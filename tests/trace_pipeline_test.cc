// End-to-end assertions on the exported trace of a coordinated
// checkpoint: the Fig. 2 phase ordering (freeze strictly precedes
// commit, local saves happen inside freeze, continues inside commit),
// the communication-silence guarantee (no pod TCP traffic delivered
// while the packet filters are up), injected faults appearing on the
// same timeline, and byte-identical exports across same-seed runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"
#include "fault/fault.h"
#include "golden_util.h"
#include "migrate_harness.h"
#include "obs/trace_query.h"

namespace cruz {
namespace {

using obs::TraceEvent;
using obs::TraceQuery;

os::PodId SpawnCounterPod(Cluster& c, std::size_t node,
                          const std::string& name) {
  os::PodId id = c.CreatePod(node, name);
  c.pods(node).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  return id;
}

// Fig. 2: the blocking protocol's phases, read back from the trace. The
// freeze span (checkpoint request through last <done>) must fully close
// before the commit span (first <continue> through last <continue-done>)
// opens, every agent's save span must sit inside freeze, and every
// continue span inside commit.
TEST(TracePipeline, Fig2PhaseOrderingFromTrace) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  auto stats =
      c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)});
  ASSERT_TRUE(stats.success);
  ASSERT_NE(stats.op_id, 0u);

  TraceQuery q(c.sim().tracer());
  const TraceEvent* op = q.First(
      TraceQuery::Filter{}.Name("coord.op.checkpoint").Op(stats.op_id));
  const TraceEvent* freeze = q.First(
      TraceQuery::Filter{}.Name("coord.phase.freeze").Op(stats.op_id));
  const TraceEvent* commit = q.First(
      TraceQuery::Filter{}.Name("coord.phase.commit").Op(stats.op_id));
  ASSERT_NE(op, nullptr);
  ASSERT_NE(freeze, nullptr);
  ASSERT_NE(commit, nullptr);

  // Phase ordering: freeze ends before commit begins; both lie inside
  // the operation span.
  EXPECT_LE(freeze->end_ts(), commit->ts);
  EXPECT_TRUE(TraceQuery::Within(*freeze, *op));
  EXPECT_TRUE(TraceQuery::Within(*commit, *op));

  // One save and one continue span per member, contained in their phase.
  std::vector<const TraceEvent*> saves =
      q.Select(TraceQuery::Filter{}.Name("agent.save").Op(stats.op_id));
  std::vector<const TraceEvent*> continues = q.Select(
      TraceQuery::Filter{}.Name("agent.continue").Op(stats.op_id));
  ASSERT_EQ(saves.size(), 2u);
  ASSERT_EQ(continues.size(), 2u);
  for (const TraceEvent* save : saves) {
    EXPECT_TRUE(TraceQuery::Within(*save, *freeze))
        << "agent.save for " << save->attrs.agent << " outside freeze";
  }
  for (const TraceEvent* cont : continues) {
    EXPECT_TRUE(TraceQuery::Within(*cont, *commit))
        << "agent.continue for " << cont->attrs.agent << " outside commit";
  }

  // Stop-the-world downtime is the save itself: the span sits inside
  // freeze and closes with the local checkpoint.
  std::vector<const TraceEvent*> downtimes = q.Select(
      TraceQuery::Filter{}.Name("agent.downtime").Op(stats.op_id));
  ASSERT_EQ(downtimes.size(), 2u);
  for (const TraceEvent* dt : downtimes) {
    EXPECT_TRUE(TraceQuery::Within(*dt, *freeze));
  }

  // Fig. 2 message complexity on the trace: 2 coordinator sends per
  // member (<checkpoint>, <continue>) and one recv per reply.
  EXPECT_EQ(q.Count(TraceQuery::Filter{}
                        .Name("coord.msg.send")
                        .Op(stats.op_id)),
            4u);
  EXPECT_GE(q.Count(TraceQuery::Filter{}
                        .Name("coord.msg.recv")
                        .Op(stats.op_id)),
            4u);
}

// While the packet filters are up (between every agent's filter install
// and the first resume), no TCP segment may be delivered to a pod
// connection: the stall in Fig. 6 is silence, not queueing at the app.
TEST(TracePipeline, NoPodTrafficDeliveredWhileFiltersUp) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);

  os::PodId recv_pod = c.CreatePod(1, "recv");
  net::Ipv4Address recv_ip = c.pods(1).Find(recv_pod)->ip;
  os::Pid recv_vpid = c.pods(1).SpawnInPod(
      recv_pod, "cruz.stream_receiver", apps::StreamReceiverArgs(9100));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId send_pod = c.CreatePod(0, "send");
  c.pods(0).SpawnInPod(send_pod, "cruz.stream_sender",
                       apps::StreamSenderArgs(recv_ip, 9100, 8 * kMiB));
  std::string pod_ip = recv_ip.ToString();

  auto delivered = [&] {
    os::Pid real = c.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = c.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).bytes : 0ull;
  };
  ASSERT_TRUE(c.sim().RunWhile([&] { return delivered() > 512 * 1024; },
                               c.sim().Now() + 60 * kSecond));

  // Record per-segment instants only around the checkpoint window.
  c.sim().tracer().set_verbose(true);
  auto stats = c.RunCheckpoint(
      {c.MemberFor(0, send_pod), c.MemberFor(1, recv_pod)});
  ASSERT_TRUE(stats.success);
  // Run until the sender's retransmission recovers and fresh segments
  // reach the receiver again (new deliveries imply new tcp.rx events).
  std::uint64_t at_ckpt = delivered();
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return delivered() > at_ckpt + 64 * 1024; },
      c.sim().Now() + 30 * kSecond));
  c.sim().tracer().set_verbose(false);

  TraceQuery q(c.sim().tracer());
  std::vector<const TraceEvent*> installs = q.Select(
      TraceQuery::Filter{}.Name("agent.filter.install").Op(stats.op_id));
  std::vector<const TraceEvent*> resumes = q.Select(
      TraceQuery::Filter{}.Name("agent.resume").Op(stats.op_id));
  ASSERT_EQ(installs.size(), 2u);
  ASSERT_EQ(resumes.size(), 2u);
  TimeNs filters_up = 0, first_resume = ~TimeNs{0};
  for (const TraceEvent* e : installs)
    filters_up = std::max(filters_up, e->ts);
  for (const TraceEvent* e : resumes)
    first_resume = std::min(first_resume, e->ts);
  ASSERT_LT(filters_up, first_resume);

  // Partition the pod connection's rx instants around the silence window.
  std::size_t before = 0, during = 0, after = 0;
  for (const TraceEvent& e : q.events()) {
    if (e.name != "tcp.rx" ||
        e.attrs.conn.find(pod_ip) == std::string::npos) {
      continue;
    }
    if (e.ts <= filters_up) {
      ++before;
    } else if (e.ts < first_resume) {
      ++during;
    } else {
      ++after;
    }
  }
  // Verbose capture saw live traffic on both sides of the window, and
  // absolute silence inside it.
  EXPECT_GT(before, 0u);
  EXPECT_GT(after, 0u);
  EXPECT_EQ(during, 0u);
}

// A chaos run's injected faults land on the same timeline as the
// protocol events they perturb, and retransmissions show up as
// coordinator instants.
TEST(TracePipeline, FaultEventsShareTheTimeline) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(777);
  plan.ArmMessageLoss(0.4);
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);
  coord::Coordinator::Options options;
  options.retransmit_interval = 200 * kMillisecond;
  options.timeout = 60 * kSecond;
  auto stats =
      c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  ASSERT_TRUE(stats.success);

  TraceQuery q(c.sim().tracer());
  std::size_t drops = q.Count(TraceQuery::Filter{}.Name("fault.msg-drop"));
  ASSERT_EQ(drops, plan.events().size());
  ASSERT_GT(drops, 0u);
  // Drops were repaired by retransmissions, and both event kinds share
  // one clock: the first retransmit can only follow a preceding drop
  // (nothing else leaves a reply outstanding in this scenario).
  std::vector<const TraceEvent*> rexmits =
      q.Select(TraceQuery::Filter{}.Name("coord.retransmit"));
  ASSERT_FALSE(rexmits.empty());
  const TraceEvent* first_drop =
      q.First(TraceQuery::Filter{}.Name("fault.msg-drop"));
  EXPECT_LE(first_drop->ts, rexmits.front()->ts);
  EXPECT_EQ(c.sim().metrics().counter("coord.retransmits_total").value(),
            rexmits.size());
}

// The determinism contract behind the bench regression gate: two runs of
// the same seeded scenario produce byte-identical trace exports and
// metrics dumps.
TEST(TracePipeline, SameSeedRunsExportIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    config.num_nodes = 3;
    Cluster c(config);
    fault::FaultPlan plan(seed + 5);
    plan.ArmMessageLoss(0.2);
    c.ArmFaults(plan);
    std::vector<coord::Coordinator::Member> members;
    for (std::size_t n = 0; n < 3; ++n) {
      members.push_back(c.MemberFor(
          n, SpawnCounterPod(c, n, "p" + std::to_string(n))));
    }
    c.sim().RunFor(10 * kMillisecond);
    coord::Coordinator::Options options;
    options.retransmit_interval = 200 * kMillisecond;
    options.timeout = 60 * kSecond;
    c.RunCheckpoint(members, options);
    struct Exports {
      std::string chrome, jsonl, metrics;
    } out{c.sim().tracer().ExportChromeJson(),
          c.sim().tracer().ExportJsonl(),
          c.sim().metrics().ExportJson()};
    return out;
  };

  auto first = run(1234);
  auto second = run(1234);
  EXPECT_EQ(first.chrome, second.chrome);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.metrics, second.metrics);
  // Sanity: the export is substantial, not trivially empty-equal.
  EXPECT_GT(first.chrome.size(), 1000u);
  EXPECT_NE(first.jsonl.find("coord.op.checkpoint"), std::string::npos);

  auto other = run(4321);
  EXPECT_NE(first.jsonl, other.jsonl);
}

// Cross-kernel golden: a fixed-seed checkpoint/restart scenario whose
// Chrome-trace and JSONL exports are committed byte-for-byte. Unlike
// SameSeedRunsExportIdenticalTraces (which only proves two runs of the
// *same* binary agree), this pins the output across rewrites of the
// simulator kernel itself — the event-queue/pooling perf pass must
// change zero bytes of it. Verbose per-segment capture is on so the
// highest-volume event class is covered too.
TEST(TracePipeline, GoldenCheckpointRestartExports) {
  ClusterConfig config;
  config.seed = 20260808;
  config.num_nodes = 3;
  Cluster c(config);
  c.sim().tracer().set_verbose(true);

  os::PodId counter = SpawnCounterPod(c, 0, "cnt");
  os::PodId recv_pod = c.CreatePod(2, "recv");
  net::Ipv4Address recv_ip = c.pods(2).Find(recv_pod)->ip;
  c.pods(2).SpawnInPod(recv_pod, "cruz.stream_receiver",
                       apps::StreamReceiverArgs(9200));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId send_pod = c.CreatePod(1, "send");
  c.pods(1).SpawnInPod(send_pod, "cruz.stream_sender",
                       apps::StreamSenderArgs(recv_ip, 9200, 192 * 1024));
  c.sim().RunFor(100 * kMillisecond);

  std::vector<coord::Coordinator::Member> members{
      c.MemberFor(0, counter), c.MemberFor(1, send_pod),
      c.MemberFor(2, recv_pod)};
  auto ckpt = c.RunCheckpoint(members);
  ASSERT_TRUE(ckpt.success);
  c.sim().RunFor(200 * kMillisecond);
  // Tear the pods down (simulated node failure aftermath) and roll the
  // whole ensemble back to the checkpoint.
  c.pods(0).DestroyPod(counter);
  c.pods(1).DestroyPod(send_pod);
  c.pods(2).DestroyPod(recv_pod);
  c.sim().RunFor(50 * kMillisecond);
  auto restart = c.RunRestart(members, ckpt.image_paths);
  ASSERT_TRUE(restart.success);
  c.sim().RunFor(100 * kMillisecond);

  cruz::testing::ExpectMatchesGolden("ckpt_restart_trace.jsonl",
                                     c.sim().tracer().ExportJsonl());
  cruz::testing::ExpectMatchesGolden("ckpt_restart_chrome.json",
                                     c.sim().tracer().ExportChromeJson());
}

// Post-copy migration golden: a fixed-seed scribbler pod migrated with
// demand paging + background push, exports pinned byte-for-byte. Two
// same-binary runs must agree exactly (determinism of the page-channel
// scheduling), and the committed golden pins it across kernel rewrites.
// Covers the migrate.op.*/migrate.downtime/migrate.postcopy.* span
// vocabulary end to end.
TEST(TracePipeline, GoldenPostCopyMigrationExports) {
  auto run = [] {
    ckpt::testing::RegisterScribbler();
    ClusterConfig config;
    config.seed = 20260808;
    config.num_nodes = 2;
    Cluster c(config);
    c.sim().tracer().set_verbose(true);
    ckpt::testing::ScribProfile profile;
    profile.scribble_seed = 11;
    profile.iterations = 4000;
    profile.pool_pages = 64;
    profile.ballast_pages = 128;
    profile.migrate_at = 3 * kMillisecond;
    ckpt::LiveMigrateOptions options;
    options.hot_window = 200 * kMicrosecond;
    os::PodId id = c.CreatePod(0, "scrib");
    c.pods(0).SpawnInPod(
        id, "harness.scribbler",
        ckpt::testing::ScribblerArgs(profile.scribble_seed,
                                     profile.iterations,
                                     profile.pool_pages));
    os::Process* scrib =
        c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, 1));
    cruz::Bytes page(os::kPageSize, 0x42);
    for (std::uint64_t i = 0; i < profile.ballast_pages; ++i) {
      scrib->memory().InstallPage(ckpt::testing::kScribBallastPage + i,
                                  page);
    }
    c.sim().RunFor(profile.migrate_at);
    bool done = false;
    ckpt::LiveMigrator::PostCopy(c.pods(0), c.pods(1), id, options,
                                 [&](const ckpt::LiveMigrateStats&) {
                                   done = true;
                                 });
    EXPECT_TRUE(c.sim().RunWhile([&] { return done; },
                                 c.sim().Now() + 600 * kSecond));
    c.sim().RunFor(100 * kMillisecond);
    struct Exports {
      std::string chrome, jsonl;
    } out{c.sim().tracer().ExportChromeJson(),
          c.sim().tracer().ExportJsonl()};
    return out;
  };

  auto first = run();
  auto second = run();
  EXPECT_EQ(first.chrome, second.chrome);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_NE(first.jsonl.find("migrate.op.post-copy"), std::string::npos);
  EXPECT_NE(first.jsonl.find("migrate.postcopy.fetch"), std::string::npos);
  EXPECT_NE(first.jsonl.find("migrate.postcopy.resume"), std::string::npos);
  cruz::testing::ExpectMatchesGolden("postcopy_migrate_trace.jsonl",
                                     first.jsonl);
  cruz::testing::ExpectMatchesGolden("postcopy_migrate_chrome.json",
                                     first.chrome);
}

}  // namespace
}  // namespace cruz
