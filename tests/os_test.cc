// Tests for the simulated OS: scheduling, processes, pipes, signals,
// SysV IPC, sockets through the full network stack, DHCP, and netfilter.
#include <gtest/gtest.h>

#include "common/error.h"
#include "os/dhcp.h"
#include "os/node.h"
#include "os/program.h"
#include "sim/simulator.h"

namespace cruz::os {
namespace {

constexpr std::uint64_t kResultAddr = 0x200000;

// --- test programs -----------------------------------------------------------

// Increments a counter in memory; exits after `iters` (from args).
class CounterProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    if (ctx.Pc() == 0) {
      Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
      ByteReader r(args);
      ctx.Reg(3) = r.GetU64();  // iterations
      ctx.Pc() = 1;
      return;
    }
    std::uint64_t count = ctx.Mem().ReadU64(kResultAddr);
    ctx.Mem().WriteU64(kResultAddr, count + 1);
    ctx.ChargeCpu(10 * kMicrosecond);
    if (count + 1 >= ctx.Reg(3)) ctx.ExitProcess(0);
  }
};

// Creates a pipe, writes a pattern, reads it back, checks, exits.
class PipeLoopProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    switch (ctx.Pc()) {
      case 0: {
        Fd rd = -1, wr = -1;
        ASSERT_EQ(ctx.MakePipe(&rd, &wr), 0);
        ctx.Reg(3) = static_cast<std::uint64_t>(rd);
        ctx.Reg(4) = static_cast<std::uint64_t>(wr);
        Bytes msg = {'p', 'i', 'n', 'g'};
        ASSERT_EQ(ctx.Write(static_cast<Fd>(ctx.Reg(4)), msg), 4);
        ctx.Pc() = 1;
        break;
      }
      case 1: {
        Bytes out;
        SysResult n = ctx.Read(static_cast<Fd>(ctx.Reg(3)), out, 16);
        ASSERT_EQ(n, 4);
        ctx.Mem().WriteBytes(kResultAddr, out);
        ctx.Close(static_cast<Fd>(ctx.Reg(3)));
        ctx.Close(static_cast<Fd>(ctx.Reg(4)));
        ctx.ExitProcess(0);
        break;
      }
    }
  }
};

// Echo server: listens on the port in args, echoes one connection's bytes
// until EOF, then exits.
class EchoServerProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kAccept, kEcho };
    switch (ctx.Pc()) {
      case kInit: {
        Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
        ByteReader r(args);
        std::uint16_t port = r.GetU16();
        SysResult fd = ctx.SocketTcp();
        ASSERT_TRUE(SysOk(fd));
        ASSERT_EQ(ctx.Bind(static_cast<Fd>(fd),
                           net::Endpoint{net::kAnyAddress, port}),
                  0);
        ASSERT_EQ(ctx.Listen(static_cast<Fd>(fd), 8), 0);
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kAccept;
        break;
      }
      case kAccept: {
        SysResult c = ctx.Accept(static_cast<Fd>(ctx.Reg(3)));
        if (SysErrno(c) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(static_cast<Fd>(ctx.Reg(3)));
          break;
        }
        ASSERT_TRUE(SysOk(c));
        ctx.Reg(4) = static_cast<std::uint64_t>(c);
        ctx.Pc() = kEcho;
        break;
      }
      case kEcho: {
        Bytes buf;
        SysResult n = ctx.RecvTcp(static_cast<Fd>(ctx.Reg(4)), buf, 4096);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(static_cast<Fd>(ctx.Reg(4)));
          break;
        }
        if (n == 0) {  // EOF
          ctx.Close(static_cast<Fd>(ctx.Reg(4)));
          ctx.ExitProcess(0);
          break;
        }
        if (n < 0) {
          ctx.ExitProcess(2);
          break;
        }
        ctx.SendTcp(static_cast<Fd>(ctx.Reg(4)), buf);
        break;
      }
    }
  }
};

// Echo client: connects to (ip, port) in args, sends a message, waits for
// the echo, stores it at kResultAddr, closes, exits.
class EchoClientProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kConnect, kSend, kRecv };
    switch (ctx.Pc()) {
      case kInit: {
        SysResult fd = ctx.SocketTcp();
        ASSERT_TRUE(SysOk(fd));
        ctx.Reg(3) = static_cast<std::uint64_t>(fd);
        ctx.Pc() = kConnect;
        break;
      }
      case kConnect: {
        Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
        ByteReader r(args);
        net::Endpoint server{net::Ipv4Address{r.GetU32()}, r.GetU16()};
        SysResult res = ctx.Connect(static_cast<Fd>(ctx.Reg(3)), server);
        if (res == 0) {
          ctx.Pc() = kSend;
          break;
        }
        Errno e = SysErrno(res);
        if (e == CRUZ_EINPROGRESS || e == CRUZ_EALREADY) {
          ctx.BlockOnWritable(static_cast<Fd>(ctx.Reg(3)));
          break;
        }
        ctx.ExitProcess(static_cast<int>(e));
        break;
      }
      case kSend: {
        Bytes msg = {'h', 'e', 'l', 'l', 'o'};
        SysResult n = ctx.SendTcp(static_cast<Fd>(ctx.Reg(3)), msg);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnWritable(static_cast<Fd>(ctx.Reg(3)));
          break;
        }
        ASSERT_EQ(n, 5);
        ctx.Pc() = kRecv;
        break;
      }
      case kRecv: {
        Bytes out;
        SysResult n = ctx.RecvTcp(static_cast<Fd>(ctx.Reg(3)), out, 64);
        if (SysErrno(n) == CRUZ_EAGAIN) {
          ctx.BlockOnReadable(static_cast<Fd>(ctx.Reg(3)));
          break;
        }
        ASSERT_EQ(n, 5);
        ctx.Mem().WriteBytes(kResultAddr, out);
        ctx.Close(static_cast<Fd>(ctx.Reg(3)));
        ctx.ExitProcess(0);
        break;
      }
    }
  }
};

// Two threads increment a shared (in-process) counter guarded by a SysV
// semaphore; also exercises SpawnThread.
class SemPairProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kLoop, kWorker = 100 };
    if (ctx.tid() == 0) {
      switch (ctx.Pc()) {
        case kInit: {
          SysResult sem = ctx.SemGet(42, 1);
          ASSERT_TRUE(SysOk(sem));
          ctx.Reg(3) = static_cast<std::uint64_t>(sem);
          ctx.Mem().WriteU64(kResultAddr, 0);
          ctx.SpawnThread(kWorker, static_cast<std::uint64_t>(sem));
          ctx.Pc() = kLoop;
          break;
        }
        case kLoop: {
          SemId sem = static_cast<SemId>(ctx.Reg(3));
          SysResult r = ctx.SemOp(sem, -1);
          if (SysErrno(r) == CRUZ_EAGAIN) {
            ctx.BlockOnSem(sem);
            break;
          }
          std::uint64_t v = ctx.Mem().ReadU64(kResultAddr);
          ctx.Mem().WriteU64(kResultAddr, v + 1);
          ctx.SemOp(sem, 1);
          ctx.ChargeCpu(5 * kMicrosecond);
          if (v + 1 >= 100) ctx.ExitProcess(0);
          break;
        }
      }
      return;
    }
    // Worker thread: same loop, different register bank (pc starts at
    // kWorker with the sem id in r1).
    SemId sem = static_cast<SemId>(ctx.Reg(1));
    SysResult r = ctx.SemOp(sem, -1);
    if (SysErrno(r) == CRUZ_EAGAIN) {
      ctx.BlockOnSem(sem);
      return;
    }
    std::uint64_t v = ctx.Mem().ReadU64(kResultAddr + 8);
    ctx.Mem().WriteU64(kResultAddr + 8, v + 1);
    ctx.SemOp(sem, 1);
    ctx.ChargeCpu(5 * kMicrosecond);
    if (v + 1 >= 100) ctx.ExitThread();
  }
};

// Writes its virtual pid to memory, spawns a child (which does the same),
// and exits.
class PidProbeProgram : public Program {
 public:
  void Step(ProcessCtx& ctx) override {
    ctx.Mem().WriteU64(kResultAddr, static_cast<std::uint64_t>(ctx.Getpid()));
    ctx.ExitProcess(0);
  }
};

bool g_registered = [] {
  auto& reg = ProgramRegistry::Instance();
  reg.Register("counter", [] { return std::make_unique<CounterProgram>(); });
  reg.Register("pipe_loop",
               [] { return std::make_unique<PipeLoopProgram>(); });
  reg.Register("echo_server",
               [] { return std::make_unique<EchoServerProgram>(); });
  reg.Register("echo_client",
               [] { return std::make_unique<EchoClientProgram>(); });
  reg.Register("sem_pair", [] { return std::make_unique<SemPairProgram>(); });
  reg.Register("pid_probe",
               [] { return std::make_unique<PidProbeProgram>(); });
  return true;
}();

// --- fixture ------------------------------------------------------------------

struct Cluster {
  sim::Simulator sim{1};
  net::EthernetSwitch ethernet{sim, net::LinkParams{}};
  NetworkFileSystem fs;
  Node n1;
  Cluster()
      : n1(sim, ethernet, fs, "node1", 1,
           NodeConfig{.ip = net::Ipv4Address::Parse("10.0.0.1"), .netmask = net::Ipv4Address::FromOctets(255, 255, 255, 0), .tcp = {}}) {}
};

struct TwoNodeCluster : Cluster {
  Node n2;
  TwoNodeCluster()
      : n2(sim, ethernet, fs, "node2", 2,
           NodeConfig{.ip = net::Ipv4Address::Parse("10.0.0.2"), .netmask = net::Ipv4Address::FromOctets(255, 255, 255, 0), .tcp = {}}) {}
};

Bytes U64Args(std::uint64_t v) {
  ByteWriter w;
  w.PutU64(v);
  return w.Take();
}

// --- tests -----------------------------------------------------------------------

TEST(OsProcess, SpawnRunExit) {
  Cluster c;
  Pid pid = c.n1.os().Spawn("counter", U64Args(50));
  Process* proc = c.n1.os().FindProcess(pid);
  ASSERT_NE(proc, nullptr);
  int exit_code = -1;
  c.n1.os().set_process_exit_hook(
      [&](Pid p, int code) { if (p == pid) exit_code = code; });
  c.sim.Run();
  EXPECT_EQ(exit_code, 0);
  EXPECT_EQ(c.n1.os().FindProcess(pid), nullptr);
}

TEST(OsProcess, CpuChargeAdvancesTime) {
  Cluster c;
  c.n1.os().Spawn("counter", U64Args(100));
  c.sim.Run();
  // 100 iterations x 10us plus scheduling granularity.
  EXPECT_GE(c.sim.Now(), 99 * 10 * kMicrosecond);
  EXPECT_LT(c.sim.Now(), 100 * 20 * kMicrosecond);
}

TEST(OsProcess, SigstopFreezesExecution) {
  Cluster c;
  Pid pid = c.n1.os().Spawn("counter", U64Args(1000));
  c.sim.RunFor(200 * kMicrosecond);
  c.n1.os().Signal(pid, kSigStop);
  Process* proc = c.n1.os().FindProcess(pid);
  ASSERT_NE(proc, nullptr);
  std::uint64_t frozen = proc->memory().ReadU64(kResultAddr);
  c.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(proc->memory().ReadU64(kResultAddr), frozen);
  c.n1.os().Signal(pid, kSigCont);
  c.sim.RunFor(kMillisecond);
  EXPECT_GT(proc->memory().ReadU64(kResultAddr), frozen);
}

TEST(OsProcess, SigkillDestroys) {
  Cluster c;
  Pid pid = c.n1.os().Spawn("counter", U64Args(1ull << 40));
  c.sim.RunFor(kMillisecond);
  c.n1.os().Signal(pid, kSigKill);
  EXPECT_EQ(c.n1.os().FindProcess(pid), nullptr);
}

TEST(OsProcess, SignalUnknownPidFails) {
  Cluster c;
  EXPECT_EQ(c.n1.os().Signal(4242, kSigKill), SysErr(CRUZ_ESRCH));
}

TEST(OsPipe, WriteReadRoundTrip) {
  Cluster c;
  Pid pid = c.n1.os().Spawn("pipe_loop", {});
  Process* proc = c.n1.os().FindProcess(pid);
  ASSERT_NE(proc, nullptr);
  Bytes result;
  int exit_code = -1;
  c.n1.os().set_process_exit_hook([&](Pid p, int code) {
    if (p == pid) exit_code = code;
  });
  // Snapshot memory before exit: run until the process is about to exit.
  c.sim.Run();
  EXPECT_EQ(exit_code, 0);
}

TEST(OsSockets, EchoOverLoopback) {
  Cluster c;
  Pid server = c.n1.os().Spawn("echo_server", [] {
    ByteWriter w;
    w.PutU16(7777);
    return w.Take();
  }());
  (void)server;
  c.sim.RunFor(kMillisecond);  // let the server reach accept
  ByteWriter w;
  w.PutU32(net::Ipv4Address::Parse("10.0.0.1").value);
  w.PutU16(7777);
  Pid client = c.n1.os().Spawn("echo_client", w.Take());
  Process* cproc = c.n1.os().FindProcess(client);
  ASSERT_NE(cproc, nullptr);
  Bytes echoed;
  int client_code = -1;
  c.n1.os().set_process_exit_hook([&](Pid p, int code) {
    if (p == client) {
      client_code = code;
      echoed = c.n1.os().FindProcess(p)->memory().ReadBytes(kResultAddr, 5);
    }
  });
  c.sim.RunFor(5 * kSecond);
  EXPECT_EQ(client_code, 0);
  EXPECT_EQ(echoed, (Bytes{'h', 'e', 'l', 'l', 'o'}));
}

TEST(OsSockets, EchoAcrossNodes) {
  TwoNodeCluster c;
  c.n1.os().Spawn("echo_server", [] {
    ByteWriter w;
    w.PutU16(8080);
    return w.Take();
  }());
  c.sim.RunFor(kMillisecond);
  ByteWriter w;
  w.PutU32(c.n1.ip().value);
  w.PutU16(8080);
  Pid client = c.n2.os().Spawn("echo_client", w.Take());
  int client_code = -1;
  Bytes echoed;
  c.n2.os().set_process_exit_hook([&](Pid p, int code) {
    if (p == client) {
      client_code = code;
      echoed = c.n2.os().FindProcess(p)->memory().ReadBytes(kResultAddr, 5);
    }
  });
  c.sim.RunFor(10 * kSecond);
  EXPECT_EQ(client_code, 0);
  EXPECT_EQ(echoed, (Bytes{'h', 'e', 'l', 'l', 'o'}));
  EXPECT_GT(c.n1.stack().arp_requests_sent() +
                c.n2.stack().arp_requests_sent(),
            0u);
}

TEST(OsSockets, ConnectRefusedWithoutListener) {
  TwoNodeCluster c;
  ByteWriter w;
  w.PutU32(c.n1.ip().value);
  w.PutU16(9999);  // nobody listening
  Pid client = c.n2.os().Spawn("echo_client", w.Take());
  int client_code = -1;
  c.n2.os().set_process_exit_hook([&](Pid p, int code) {
    if (p == client) client_code = code;
  });
  c.sim.RunFor(30 * kSecond);
  EXPECT_EQ(client_code, CRUZ_ECONNREFUSED);
}

TEST(OsSemaphores, TwoThreadsInterleave) {
  Cluster c;
  Pid pid = c.n1.os().Spawn("sem_pair", {});
  Process* proc = c.n1.os().FindProcess(pid);
  ASSERT_NE(proc, nullptr);
  std::uint64_t main_count = 0, worker_count = 0;
  c.n1.os().set_process_exit_hook([&](Pid p, int) {
    if (p == pid) {
      Process* pr = c.n1.os().FindProcess(p);
      main_count = pr->memory().ReadU64(kResultAddr);
      worker_count = pr->memory().ReadU64(kResultAddr + 8);
    }
  });
  c.sim.RunFor(10 * kSecond);
  EXPECT_GE(main_count, 100u);
  EXPECT_GE(worker_count, 1u);  // worker made progress under the semaphore
}

TEST(OsFiles, OpenWriteReadThroughNetfs) {
  Cluster c;
  // Exercise the file syscalls directly at the kernel interface.
  Pid pid = c.n1.os().Spawn("counter", U64Args(1));
  Process* proc = c.n1.os().FindProcess(pid);
  ASSERT_NE(proc, nullptr);
  Os& os = c.n1.os();
  SysResult fd = os.SysOpen(*proc, "/data/test.txt", /*create=*/true);
  ASSERT_TRUE(SysOk(fd));
  Bytes payload = {'a', 'b', 'c'};
  EXPECT_EQ(os.SysWrite(*proc, static_cast<Fd>(fd), payload), 3);
  // Reopen and read back (fresh offset).
  SysResult fd2 = os.SysOpen(*proc, "/data/test.txt", false);
  ASSERT_TRUE(SysOk(fd2));
  Bytes out;
  EXPECT_EQ(os.SysRead(*proc, static_cast<Fd>(fd2), out, 10), 3);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(os.SysClose(*proc, static_cast<Fd>(fd)), 0);
  EXPECT_EQ(os.SysClose(*proc, static_cast<Fd>(fd2)), 0);
  EXPECT_EQ(os.SysClose(*proc, static_cast<Fd>(fd2)), SysErr(CRUZ_EBADF));
}

TEST(OsNetfilter, DropRuleBlocksTraffic) {
  TwoNodeCluster c;
  c.n1.os().Spawn("echo_server", [] {
    ByteWriter w;
    w.PutU16(8080);
    return w.Take();
  }());
  c.sim.RunFor(kMillisecond);
  // Install the Cruz agent-style drop rule on node1 for its own address.
  net::Ipv4Address blocked = c.n1.ip();
  std::uint64_t rule = c.n1.stack().AddFilter(
      [blocked](const net::Ipv4Packet& pkt) {
        return pkt.src == blocked || pkt.dst == blocked;
      });
  ByteWriter w;
  w.PutU32(c.n1.ip().value);
  w.PutU16(8080);
  Pid client = c.n2.os().Spawn("echo_client", w.Take());
  int client_code = -1;
  c.n2.os().set_process_exit_hook([&](Pid p, int code) {
    if (p == client) client_code = code;
  });
  c.sim.RunFor(3 * kSecond);
  EXPECT_EQ(client_code, -1);  // SYN dropped silently: still retrying
  EXPECT_GT(c.n1.stack().filtered_packets(), 0u);
  // Remove the rule: the pending connection completes via retransmission.
  c.n1.stack().RemoveFilter(rule);
  c.sim.RunFor(30 * kSecond);
  EXPECT_EQ(client_code, 0);
}

TEST(OsDhcp, LeaseStableByChaddr) {
  TwoNodeCluster c;
  DhcpServer server(c.n1.stack(), net::Ipv4Address::Parse("10.0.0.100"), 10);
  net::MacAddress fake = net::MacAddress::FromId(0xFA4E);
  net::Ipv4Address got1, got2;
  DhcpClient::Request(c.n2.stack(), fake,
                      [&](net::Ipv4Address ip) { got1 = ip; });
  c.sim.RunFor(kSecond);
  EXPECT_EQ(got1, net::Ipv4Address::Parse("10.0.0.100"));
  // Second request with the same chaddr — from a different node, as after
  // migration — must return the same lease.
  DhcpClient::Request(c.n1.stack(), fake,
                      [&](net::Ipv4Address ip) { got2 = ip; });
  c.sim.RunFor(kSecond);
  EXPECT_EQ(got2, got1);
  EXPECT_EQ(server.lease_count(), 1u);
}

TEST(OsDhcp, DistinctChaddrsGetDistinctLeases) {
  TwoNodeCluster c;
  DhcpServer server(c.n1.stack(), net::Ipv4Address::Parse("10.0.0.100"), 10);
  net::Ipv4Address a, b;
  DhcpClient::Request(c.n2.stack(), net::MacAddress::FromId(1),
                      [&](net::Ipv4Address ip) { a = ip; });
  c.sim.RunFor(kSecond);
  DhcpClient::Request(c.n2.stack(), net::MacAddress::FromId(2),
                      [&](net::Ipv4Address ip) { b = ip; });
  c.sim.RunFor(kSecond);
  EXPECT_NE(a, b);
  EXPECT_EQ(server.lease_count(), 2u);
}

TEST(OsNode, DiskModelScalesWithBytes) {
  Cluster c;
  DurationNs d1 = c.n1.DiskWriteDuration(10 * kMiB);
  DurationNs d2 = c.n1.DiskWriteDuration(20 * kMiB);
  EXPECT_GT(d2, d1);
  EXPECT_LT(c.n1.DiskReadDuration(10 * kMiB), d1);
}

TEST(OsNode, FailStopsEverything) {
  TwoNodeCluster c;
  Pid pid = c.n1.os().Spawn("counter", U64Args(1ull << 40));
  c.sim.RunFor(kMillisecond);
  c.n1.Fail();
  EXPECT_EQ(c.n1.os().FindProcess(pid), nullptr);
  EXPECT_TRUE(c.n1.failed());
}

TEST(OsVif, AddRemoveVirtualInterface) {
  TwoNodeCluster c;
  net::MacAddress vif_mac = net::MacAddress::FromId(0xBEEF);
  net::Ipv4Address vif_ip = net::Ipv4Address::Parse("10.0.0.50");
  c.n1.stack().AddInterface("pod1", vif_mac, vif_ip,
                            net::Ipv4Address::FromOctets(255, 255, 255, 0),
                            /*is_virtual=*/true);
  EXPECT_TRUE(c.n1.stack().OwnsIp(vif_ip));
  EXPECT_TRUE(c.n1.nic().HasMacFilter(vif_mac));
  c.n1.stack().RemoveInterface("pod1");
  EXPECT_FALSE(c.n1.stack().OwnsIp(vif_ip));
  EXPECT_FALSE(c.n1.nic().HasMacFilter(vif_mac));
}

TEST(OsVif, SharedMacFallbackUsesPromiscuous) {
  sim::Simulator sim{1};
  net::EthernetSwitch ethernet{sim, net::LinkParams{}};
  NetworkFileSystem fs;
  NodeConfig cfg;
  cfg.ip = net::Ipv4Address::Parse("10.0.0.1");
  cfg.nic_supports_multiple_macs = false;
  Node n(sim, ethernet, fs, "node1", 1, cfg);
  n.stack().AddInterface("pod1", net::MacAddress::FromId(0xBEEF),
                         net::Ipv4Address::Parse("10.0.0.50"),
                         net::Ipv4Address::FromOctets(255, 255, 255, 0),
                         true);
  EXPECT_TRUE(n.nic().promiscuous());
}

TEST(OsMemory, TypedAccessAndPages) {
  Memory m;
  m.WriteU64(0x5000, 0x1122334455667788ull);
  EXPECT_EQ(m.ReadU64(0x5000), 0x1122334455667788ull);
  m.WriteF64(0x5008, 3.25);
  EXPECT_DOUBLE_EQ(m.ReadF64(0x5008), 3.25);
  // Cross-page write.
  Bytes big(kPageSize * 2, 0x7);
  m.WriteBytes(kPageSize - 100, big);
  EXPECT_EQ(m.ReadBytes(kPageSize - 100, big.size()), big);
  EXPECT_GE(m.PageCount(), 3u);
  // Unwritten memory reads as zero.
  EXPECT_EQ(m.ReadU64(0x999000), 0u);
  std::size_t before = m.PageCount();
  m.WriteU64(0x800000, 0);  // allocates an all-zero page
  EXPECT_EQ(m.PageCount(), before + 1);
  m.DropZeroPages();
  EXPECT_LE(m.PageCount(), before);
}

// Differential test for the word-indexed dirty bitmap: drive a long
// randomized sequence of writes / clears / probes through Memory while a
// plain std::set reference model tracks what "dirty since last clear"
// must mean; both views have to agree at every step.
TEST(OsMemory, DirtyBitmapMatchesReferenceSet) {
  Memory m;
  std::set<std::uint64_t> ref;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 4000; ++step) {
    std::uint64_t r = next();
    // Sparse page universe: clusters near 0, near a high base, and a few
    // scattered singletons, so many bitmap words are exercised, including
    // words holding a single bit.
    std::uint64_t page;
    switch (r % 4) {
      case 0: page = (r >> 8) % 256; break;
      case 1: page = 0x40000 + (r >> 8) % 256; break;
      case 2: page = (r >> 8) % (std::uint64_t{1} << 40); break;
      default: page = 63 + 64 * ((r >> 8) % 8); break;  // word boundaries
    }
    switch ((r >> 4) % 8) {
      case 0: {  // cross-page write dirties every page it touches
        Bytes blob(kPageSize + 64, static_cast<std::uint8_t>(r));
        m.WriteBytes(page * kPageSize + kPageSize - 32, blob);
        ref.insert(page);
        ref.insert(page + 1);
        ref.insert(page + 2);
        break;
      }
      case 1:
        m.ClearDirty();
        ref.clear();
        break;
      default:
        m.WriteU64(page * kPageSize + 8 * ((r >> 16) % 16), r);
        ref.insert(page);
        break;
    }
    EXPECT_EQ(m.IsDirty(page), ref.count(page) != 0);
    std::uint64_t probe = next() % (std::uint64_t{1} << 40);
    EXPECT_EQ(m.IsDirty(probe), ref.count(probe) != 0);
    if (step % 97 == 0) {
      EXPECT_EQ(m.dirty_pages(), ref);
    }
  }
  EXPECT_EQ(m.dirty_pages(), ref);
  m.ClearDirty();
  EXPECT_TRUE(m.dirty_pages().empty());
}

// Demand-paging (post-copy migration) unit semantics: a missing page
// faults on any touch, absent pages still read as zero, and fills are
// idempotent — the first wins, duplicates are dropped.
TEST(OsMemory, MissingPagesFaultUntilFilled) {
  Memory m;
  m.WriteU64(0x1000, 7);  // resident page 1
  m.MarkMissing(5);
  m.MarkMissing(9);
  m.MarkMissing(9);  // re-marking is harmless
  EXPECT_TRUE(m.HasMissingPages());
  EXPECT_EQ(m.missing_pages(), (std::set<std::uint64_t>{5, 9}));
  EXPECT_TRUE(m.IsMissing(5));
  EXPECT_FALSE(m.IsMissing(1));

  // Absent != missing: page 2 was never written and reads as zeros.
  EXPECT_EQ(m.ReadU64(2 * kPageSize), 0u);

  // Any touch of a missing page faults, reporting which page — reads,
  // writes, and multi-byte accesses that merely graze the page.
  try {
    m.ReadU64(5 * kPageSize + 16);
    FAIL() << "read of missing page did not fault";
  } catch (const PageFault& f) {
    EXPECT_EQ(f.page_index, 5u);
  }
  EXPECT_THROW(m.WriteU64(9 * kPageSize, 1), PageFault);
  EXPECT_THROW(m.ReadBytes(5 * kPageSize - 4, 8), PageFault);

  // First fill installs the content and clears the missing bit.
  Bytes content(kPageSize, 0xAB);
  EXPECT_TRUE(m.FillPage(5, content));
  EXPECT_FALSE(m.IsMissing(5));
  EXPECT_EQ(m.ReadBytes(5 * kPageSize, 8), Bytes(8, 0xAB));

  // Duplicate fill (retransmit / push racing a fetch) is dropped and
  // does not clobber what is already resident.
  m.WriteU64(5 * kPageSize, 0x1234);
  Bytes stale(kPageSize, 0xCD);
  EXPECT_FALSE(m.FillPage(5, stale));
  EXPECT_EQ(m.ReadU64(5 * kPageSize), 0x1234u);

  EXPECT_TRUE(m.FillPage(9, content));
  EXPECT_FALSE(m.HasMissingPages());
  // With the residue delivered, snapshots are legal again.
  EXPECT_EQ(m.Snapshot().PageCount(), m.PageCount());
}

TEST(OsNetfs, BasicOperations) {
  NetworkFileSystem fs;
  EXPECT_FALSE(fs.Exists("/a"));
  fs.WriteFile("/a", {1, 2, 3});
  EXPECT_TRUE(fs.Exists("/a"));
  EXPECT_EQ(fs.FileSize("/a"), 3);
  fs.AppendFile("/a", Bytes{4, 5});
  Bytes out;
  EXPECT_EQ(fs.ReadFile("/a", out), 5);
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4, 5}));
  out.clear();
  EXPECT_EQ(fs.ReadAt("/a", 3, 10, out), 2);
  EXPECT_EQ(out, (Bytes{4, 5}));
  EXPECT_EQ(fs.List("/").size(), 1u);
  EXPECT_EQ(fs.Remove("/a"), 0);
  EXPECT_EQ(fs.Remove("/a"), SysErr(CRUZ_ENOENT));
  EXPECT_EQ(fs.ReadFile("/a", out), SysErr(CRUZ_ENOENT));
}

}  // namespace
}  // namespace cruz::os
