// Self-tests for the simulation explorer's invariant oracle: every
// registered invariant must be falsifiable — a deliberately broken
// pipeline (Mutation) has to trip exactly the invariant it targets —
// and the whole explorer must be deterministic and shrinkable.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "check/scenario.h"
#include "check/shrink.h"
#include "golden_util.h"

namespace cruz::check {
namespace {

bool HasViolation(const std::vector<Violation>& violations,
                  const std::string& invariant) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return v.invariant == invariant;
                     });
}

Scenario MustDecode(const std::string& repro) {
  std::optional<Scenario> s = Scenario::Decode(repro);
  EXPECT_TRUE(s.has_value()) << repro;
  return s.value_or(Scenario{});
}

// One hand-picked scenario per mutation, chosen so the sabotage has
// something to break: a checkpoint for the continue hooks, a failing
// checkpoint for the commit hook, a corrupt-latest generation for the
// blind restart, and so on.
struct MutationCase {
  Mutation mutation;
  std::string invariant;  // the invariant the mutation must trip
  std::string repro;
};

const std::vector<MutationCase>& MutationCases() {
  static const std::vector<MutationCase> kCases = {
      {Mutation::kAbandonWorkload, "workload-intact",
       "cruzrepro1 seed=1 nodes=2 wl=2 units=8000 op=0,10,0,0,0,0,0"},
      // A kvstore keeps segments in flight; with message delay stretching
      // the RTT, one lands inside the freeze window when the filter is
      // skipped (seed 16 of the generator, verbatim).
      {Mutation::kSkipDropFilter, "comm-silence",
       "cruzrepro1 seed=16 nodes=4 wl=1 units=250 op=0,11,1,1,1,1,1894681497 "
       "op=1,52,2,0,0,0,1157989296 op=0,41,2,0,0,0,2546676988 "
       "fault=2,1,151,8"},
      {Mutation::kCommitFailedGeneration, "gen-commit",
       "cruzrepro1 seed=2 nodes=2 wl=2 units=4000 op=0,10,0,0,0,0,0 "
       "fault=3,0,0,1"},
      {Mutation::kRestartBlindLatest, "restart-newest-intact",
       "cruzrepro1 seed=5 nodes=3 wl=2 units=4000 op=0,10,0,0,0,0,0 "
       "op=1,10,0,0,0,0,2 op=0,10,0,0,0,0,0 op=1,10,0,0,0,0,0 "
       "fault=4,2,0,1"},
      {Mutation::kWipeCoordinatorJournal, "protocol-order",
       "cruzrepro1 seed=3 nodes=2 wl=2 units=4000 op=0,10,0,0,0,0,0 "
       "op=3,10,0,0,0,0,0 op=0,10,0,0,0,0,0"},
      {Mutation::kDuplicateContinue, "continue-exactly-once",
       "cruzrepro1 seed=4 nodes=2 wl=2 units=4000 op=0,10,0,0,0,0,0"},
      {Mutation::kLeakPartialImage, "no-partial-state",
       "cruzrepro1 seed=6 nodes=2 wl=2 units=4000 op=0,10,0,0,0,0,0"},
      // One checkpoint then a restart: the sabotage drops every surviving
      // copy of the generation's last image after the intact check, so
      // the restart finds no restorable generation.
      {Mutation::kDropLastReplica, "replica-availability",
       "cruzrepro1 seed=9 nodes=3 wl=2 units=4000 tiered=1 "
       "op=0,10,0,0,0,0,0 op=1,10,0,0,0,0,2"},
      // Hierarchical checkpoint where every sub-coordinator acks its
      // shard request without forwarding to the agents: the generation
      // commits (fabricated shard-dones carry fake replicas) with zero
      // agent saves on the trace.
      {Mutation::kShardAckWithoutForward, "gen-commit",
       "cruzrepro1 seed=7 nodes=6 wl=2 units=4000 tiered=1 fanout=2 "
       "op=0,10,0,0,0,0,0"},
      // Hybrid migration of a still-running counter: the dirty-at-stop
      // residue is demand-paged, and the sabotaged source accounts those
      // pages as delivered without ever sending them, so "done" fires
      // with the counter parked on a missing page forever.
      {Mutation::kDropPageResponse, "resident-set-complete",
       "cruzrepro1 seed=21 nodes=3 wl=2 units=60000 migrate=3 "
       "op=2,10,0,0,0,0,0"},
      // Post-copy migration where the source-side destroy is skipped:
      // the pod ends up running on both nodes at once.
      {Mutation::kResumeBothSides, "migration-exactly-one-running-copy",
       "cruzrepro1 seed=22 nodes=3 wl=2 units=60000 migrate=2 "
       "op=2,10,0,0,0,0,0"},
  };
  return kCases;
}

// The same scenario must pass with the sabotage off and trip the
// targeted invariant with it on — otherwise the invariant either never
// fires (dead check) or fires spuriously (false positive).
TEST(OracleSelfTest, EachMutationTripsItsInvariant) {
  for (const MutationCase& mc : MutationCases()) {
    SCOPED_TRACE(MutationName(mc.mutation));
    Scenario scenario = MustDecode(mc.repro);

    Explorer clean;
    RunResult baseline = clean.RunScenario(scenario);
    EXPECT_TRUE(baseline.passed) << baseline.summary;

    Explorer broken(RunOptions{mc.mutation});
    RunResult run = broken.RunScenario(scenario);
    EXPECT_FALSE(run.passed);
    EXPECT_TRUE(HasViolation(run.violations, mc.invariant))
        << "expected a " << mc.invariant << " violation, got: "
        << run.summary;
  }
}

// Coverage: the mutation table above must reach every invariant the
// default oracle registers, so no check can silently go dead.
TEST(OracleSelfTest, EveryRegisteredInvariantIsCovered) {
  std::set<std::string> covered;
  for (const MutationCase& mc : MutationCases()) covered.insert(mc.invariant);
  Explorer explorer;
  for (const std::string& name : explorer.oracle().names()) {
    EXPECT_TRUE(covered.count(name) == 1)
        << "invariant " << name << " has no breaking-mutation self-test";
  }
  EXPECT_EQ(covered.size(), explorer.oracle().names().size());
}

TEST(ScenarioCodec, EncodeDecodeRoundTrips) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Scenario original = ScenarioGenerator::FromSeed(seed);
    std::optional<Scenario> decoded = Scenario::Decode(original.Encode());
    ASSERT_TRUE(decoded.has_value()) << original.Encode();
    EXPECT_EQ(decoded->Encode(), original.Encode());
  }
}

// Regression: the codec and topology used to top out at small clusters
// (node/pod IPs were carved out of one /24). Scale scenarios need
// hundreds of nodes plus a fan-out token, and old flat repro strings
// must keep decoding with fan_out absent.
TEST(ScenarioCodec, AcceptsLargeNodeCountsWithFanOut) {
  std::optional<Scenario> s = Scenario::Decode(
      "cruzrepro1 seed=1 nodes=200 wl=2 units=4000 fanout=32 "
      "op=0,10,0,0,0,0,0");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->num_nodes, 200u);
  EXPECT_EQ(s->fan_out, 32u);
  EXPECT_EQ(Scenario::Decode(s->Encode())->Encode(), s->Encode());

  // Out-of-range fan-outs are rejected, absent fan-out stays flat.
  EXPECT_FALSE(Scenario::Decode(
                   "cruzrepro1 seed=1 nodes=4 wl=0 units=1 fanout=1")
                   .has_value());
  EXPECT_FALSE(Scenario::Decode(
                   "cruzrepro1 seed=1 nodes=4 wl=0 units=1 fanout=300")
                   .has_value());
  EXPECT_EQ(MustDecode("cruzrepro1 seed=1 nodes=4 wl=0 units=1").fan_out, 0u);
}

// The migrate token selects the live-migration mode; absent = pre-copy,
// so every pre-post-copy repro string replays exactly as before.
TEST(ScenarioCodec, MigrateModeTokenRoundTripsAndRejects) {
  Scenario s = MustDecode(
      "cruzrepro1 seed=1 nodes=3 wl=2 units=4000 migrate=2 "
      "op=2,10,0,0,0,0,0");
  EXPECT_EQ(s.migrate_mode, 2u);
  EXPECT_EQ(Scenario::Decode(s.Encode())->Encode(), s.Encode());
  EXPECT_EQ(MustDecode("cruzrepro1 seed=1 nodes=2 wl=0 units=1").migrate_mode,
            1u);
  EXPECT_FALSE(
      Scenario::Decode("cruzrepro1 seed=1 nodes=2 wl=0 units=1 migrate=4")
          .has_value());
}

TEST(ScenarioCodec, RejectsMalformedRepros) {
  EXPECT_FALSE(Scenario::Decode("").has_value());
  EXPECT_FALSE(Scenario::Decode("bogus").has_value());
  EXPECT_FALSE(Scenario::Decode("cruzrepro1 seed=1 nodes=1 wl=0 units=1")
                   .has_value());  // single-node clusters are invalid
  EXPECT_FALSE(
      Scenario::Decode("cruzrepro1 seed=1 nodes=2 wl=9 units=1").has_value());
}

TEST(ScenarioCodec, GenerationIsDeterministic) {
  for (std::uint64_t seed : {0ull, 11ull, 155ull, 9999ull}) {
    EXPECT_EQ(ScenarioGenerator::FromSeed(seed).Encode(),
              ScenarioGenerator::FromSeed(seed).Encode());
  }
}

TEST(ExplorerRuns, SameScenarioSameVerdict) {
  Explorer a;
  Explorer b;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RunResult ra = a.RunSeed(seed);
    RunResult rb = b.RunSeed(seed);
    EXPECT_EQ(ra.passed, rb.passed) << "seed " << seed;
    EXPECT_EQ(ra.summary, rb.summary) << "seed " << seed;
    EXPECT_EQ(ra.violations.size(), rb.violations.size()) << "seed " << seed;
  }
}

// Acceptance criterion: a seeded injected bug shrinks to a repro with at
// most three fault-plan events (here: to none — the mutation alone
// reproduces it), and the minimal scenario still fails.
TEST(ShrinkerTest, ReducesInjectedBugToSmallRepro) {
  Scenario failing = ScenarioGenerator::FromSeed(5);
  ASSERT_GE(failing.faults.size(), 2u);

  RunOptions options;
  options.mutation = Mutation::kDuplicateContinue;
  Explorer broken(options);
  ASSERT_FALSE(broken.RunScenario(failing).passed);

  Shrinker shrinker(options);
  ShrinkResult shrunk = shrinker.Shrink(failing, 100);
  EXPECT_LE(shrunk.minimal.faults.size(), 3u);
  EXPECT_LE(shrunk.minimal.ops.size(), failing.ops.size());
  EXPECT_FALSE(shrunk.violations.empty());
  EXPECT_TRUE(
      HasViolation(shrunk.violations, "continue-exactly-once"));
  EXPECT_GT(shrunk.runs, 0u);
  EXPECT_LE(shrunk.runs, 100u);

  // The emitted repro string replays to the same failure.
  Scenario replay = MustDecode(shrunk.repro);
  RunResult rerun = broken.RunScenario(replay);
  EXPECT_FALSE(rerun.passed);
}

// The tiered sabotage also shrinks: tier-scoped faults and the trailing
// checkpoint are irrelevant to the dropped replica, so the minimal plan
// is just checkpoint + restart (the mutation alone reproduces it).
TEST(ShrinkerTest, DropLastReplicaShrinksToCheckpointRestart) {
  Scenario failing = MustDecode(
      "cruzrepro1 seed=9 nodes=3 wl=2 units=4000 tiered=1 "
      "op=0,10,0,0,0,0,0 op=1,10,0,0,0,0,2 op=0,15,0,0,0,0,0 "
      "fault=6,1,0,40 fault=9,2,0,200");

  RunOptions options;
  options.mutation = Mutation::kDropLastReplica;
  Explorer broken(options);
  ASSERT_FALSE(broken.RunScenario(failing).passed);

  Shrinker shrinker(options);
  ShrinkResult shrunk = shrinker.Shrink(failing, 100);
  EXPECT_TRUE(shrunk.minimal.tiered);
  EXPECT_TRUE(shrunk.minimal.faults.empty());
  EXPECT_LE(shrunk.minimal.ops.size(), 2u);
  EXPECT_TRUE(HasViolation(shrunk.violations, "replica-availability"));

  Scenario replay = MustDecode(shrunk.repro);
  EXPECT_FALSE(broken.RunScenario(replay).passed);
}

// The migration sabotage also shrinks to a minimal proof: the flanking
// checkpoints and the channel faults are irrelevant — the mutation alone
// breaks the lone migrate op.
TEST(ShrinkerTest, DropPageResponseShrinksToLoneMigrate) {
  Scenario failing = MustDecode(
      "cruzrepro1 seed=23 nodes=3 wl=2 units=60000 migrate=3 "
      "op=0,10,0,0,0,0,0 op=2,10,0,0,0,0,0 op=0,15,0,0,0,0,0 "
      "fault=0,1,80,0 fault=2,2,100,5");

  RunOptions options;
  options.mutation = Mutation::kDropPageResponse;
  Explorer broken(options);
  ASSERT_FALSE(broken.RunScenario(failing).passed);

  Shrinker shrinker(options);
  ShrinkResult shrunk = shrinker.Shrink(failing, 100);
  EXPECT_TRUE(shrunk.minimal.faults.empty());
  EXPECT_LE(shrunk.minimal.ops.size(), 2u);
  EXPECT_TRUE(HasViolation(shrunk.violations, "resident-set-complete"));

  Scenario replay = MustDecode(shrunk.repro);
  EXPECT_FALSE(broken.RunScenario(replay).passed);
}

TEST(ShrinkerTest, PassingScenarioIsReturnedUnshrunk) {
  Scenario passing = ScenarioGenerator::FromSeed(1);
  Shrinker shrinker;
  ShrinkResult r = shrinker.Shrink(passing, 10);
  EXPECT_EQ(r.runs, 1u);  // one run to discover it does not reproduce
  EXPECT_EQ(r.minimal.Encode(), passing.Encode());
  EXPECT_TRUE(r.violations.empty());
}

// Cross-kernel golden sweep: seeds 0..63 expand, run, and judge exactly
// as before any simulator-hot-path rewrite — per-seed oracle verdicts,
// violation lists, and cruzrepro1 strings are pinned byte-for-byte. A
// queue/pooling refactor that perturbs event order would flip a verdict
// or reshuffle a violation here before it ever reached production.
TEST(ExplorerTest, GoldenSweepVerdictsAndReprosSeeds0To63) {
  Explorer explorer;
  std::string out;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    RunResult r = explorer.RunSeed(seed);
    out += "seed=" + std::to_string(seed);
    out += r.passed ? " ok" : " FAIL";
    for (const Violation& v : r.violations) {
      out += " violation=" + v.invariant;
    }
    out += " " + r.scenario.Encode() + "\n";
  }
  cruz::testing::ExpectMatchesGolden("explorer_sweep_seeds_0_63.txt", out);
}

}  // namespace
}  // namespace cruz::check
