// Tests for the §5.2 optimizations implemented as extensions:
// incremental checkpointing (dirty-page deltas with parent-chain restore)
// and copy-on-write checkpoint-and-continue.
#include <gtest/gtest.h>

#include <set>

#include "apps/programs.h"
#include "apps/slm.h"
#include "ckpt/engine.h"
#include "cruz/cluster.h"

namespace cruz::ckpt {
namespace {

// --- memory dirty tracking ----------------------------------------------------

TEST(DirtyTracking, WritesMarkPages) {
  os::Memory m;
  EXPECT_TRUE(m.dirty_pages().empty());
  m.WriteU64(0x5000, 1);
  EXPECT_TRUE(m.IsDirty(0x5));
  EXPECT_EQ(m.dirty_pages().size(), 1u);
  // Cross-page write dirties both pages.
  cruz::Bytes two_pages(os::kPageSize + 10, 7);
  m.WriteBytes(0x10000 - 5, two_pages);
  EXPECT_TRUE(m.IsDirty(0xF));
  EXPECT_TRUE(m.IsDirty(0x10));
  EXPECT_TRUE(m.IsDirty(0x11));
  m.ClearDirty();
  EXPECT_TRUE(m.dirty_pages().empty());
  // Reads do not dirty.
  m.ReadU64(0x5000);
  EXPECT_TRUE(m.dirty_pages().empty());
  // Rewrites re-dirty.
  m.WriteU64(0x5000, 2);
  EXPECT_EQ(m.dirty_pages().size(), 1u);
}

// --- image merge ---------------------------------------------------------------

TEST(IncrementalImage, MergeOverlaysPages) {
  PodCheckpoint base;
  base.pod_id = 7;
  ProcessRecord bp;
  bp.vpid = 1;
  bp.program = "cruz.counter";
  bp.pages.push_back(PageRecord{1, cruz::Bytes(os::kPageSize, 0xAA)});
  bp.pages.push_back(PageRecord{2, cruz::Bytes(os::kPageSize, 0xBB)});
  base.processes.push_back(bp);

  PodCheckpoint delta;
  delta.pod_id = 7;
  delta.incremental = true;
  delta.generation = 1;
  ProcessRecord dp;
  dp.vpid = 1;
  dp.program = "cruz.counter";
  dp.pages.push_back(PageRecord{2, cruz::Bytes(os::kPageSize, 0xCC)});
  dp.pages.push_back(PageRecord{3, cruz::Bytes(os::kPageSize, 0xDD)});
  delta.processes.push_back(dp);

  PodCheckpoint merged = delta.MergeOnto(base);
  EXPECT_FALSE(merged.incremental);
  ASSERT_EQ(merged.processes.size(), 1u);
  const auto& pages = merged.processes[0].pages;
  ASSERT_EQ(pages.size(), 3u);
  EXPECT_EQ(pages[0].page_index, 1u);
  EXPECT_EQ(pages[0].content[0], 0xAA);  // untouched base page
  EXPECT_EQ(pages[1].page_index, 2u);
  EXPECT_EQ(pages[1].content[0], 0xCC);  // delta wins
  EXPECT_EQ(pages[2].page_index, 3u);
  EXPECT_EQ(pages[2].content[0], 0xDD);  // new page
}

TEST(IncrementalImage, RoundTripKeepsChainFields) {
  PodCheckpoint ck;
  ck.pod_name = "x";
  ck.incremental = true;
  ck.generation = 5;
  ck.parent_image = "/ckpt/gen4.img";
  PodCheckpoint d = PodCheckpoint::Deserialize(ck.Serialize());
  EXPECT_TRUE(d.incremental);
  EXPECT_EQ(d.generation, 5u);
  EXPECT_EQ(d.parent_image, "/ckpt/gen4.img");
}

// --- engine: incremental capture + chain restore ------------------------------

TEST(Incremental, DeltaCapturesOnlyDirtyPages) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  // Give the process a large, mostly-static working set.
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 200; ++i) {
    proc->memory().InstallPage(0x100 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);

  // Full base checkpoint.
  PodCheckpoint base = CheckpointEngine::CapturePod(c.pods(0), id);
  std::size_t base_pages = base.processes[0].pages.size();
  EXPECT_GT(base_pages, 200u);
  c.node(0).os().fs().WriteFile("/ckpt/base.img", base.Serialize());
  CheckpointEngine::ResumePod(c.pods(0), id);
  c.sim().RunFor(10 * kMillisecond);  // the counter touches ~1 page

  CaptureOptions options;
  options.incremental = true;
  options.parent_image = "/ckpt/base.img";
  options.generation = 1;
  PodCheckpoint delta =
      CheckpointEngine::CapturePod(c.pods(0), id, options);
  c.node(0).os().fs().WriteFile("/ckpt/delta.img", delta.Serialize());
  // Only the pages the counter touched since the base are in the delta.
  EXPECT_LT(delta.processes[0].pages.size(), 5u);
  EXPECT_TRUE(delta.incremental);

  // Restore from the chain: the counter continues from the delta state.
  std::uint64_t at_delta = apps::ReadCounter(
      *c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid)));
  c.pods(0).DestroyPod(id);
  PodCheckpoint merged =
      CheckpointEngine::LoadImageChain(c.node(0).os().fs(),
                                       "/ckpt/delta.img");
  EXPECT_EQ(merged.processes[0].pages.size(), base_pages);
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), merged);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(apps::ReadCounter(*rp), at_delta);
  // The static working set survived through the base image.
  EXPECT_EQ(rp->memory().ReadBytes(0x100 * os::kPageSize, 16),
            cruz::Bytes(16, 0x42));
}

TEST(Incremental, MissingParentLinkFails) {
  Cluster c;
  PodCheckpoint orphan;
  orphan.pod_name = "o";
  orphan.incremental = true;
  orphan.parent_image = "/ckpt/nonexistent.img";
  c.node(0).os().fs().WriteFile("/ckpt/orphan.img", orphan.Serialize());
  EXPECT_THROW(CheckpointEngine::LoadImageChain(c.node(0).os().fs(),
                                                "/ckpt/orphan.img"),
               UsageError);
}

// --- coordinated incremental checkpoints + restart from a chain ----------------

TEST(Incremental, CoordinatedChainRestartPreservesSlmResult) {
  apps::RegisterSlmProgram();
  ClusterConfig config;
  config.num_nodes = 4;  // ranks on 0,1; spares 2,3
  Cluster c(config);
  apps::SlmConfig base;
  base.nranks = 2;
  base.rows = 64;
  base.cols = 256;
  base.iterations = 300;
  base.compute_per_iteration = kMillisecond;
  base.exit_when_done = false;
  std::vector<os::PodId> pods;
  for (std::uint32_t r = 0; r < 2; ++r) {
    pods.push_back(c.CreatePod(r, "slm" + std::to_string(r)));
    base.peers.push_back(c.pods(r).Find(pods.back())->ip);
  }
  std::vector<os::Pid> vpids;
  for (std::uint32_t r = 0; r < 2; ++r) {
    apps::SlmConfig cfg = base;
    cfg.rank = r;
    vpids.push_back(c.pods(r).SpawnInPod(pods[r], "cruz.slm_rank",
                                         apps::SlmArgs(cfg)));
  }
  auto iterations = [&](std::size_t node, std::uint32_t r) {
    os::Process* p =
        c.node(node).os().FindProcess(c.pods(node).ToRealPid(pods[r],
                                                             vpids[r]));
    return p != nullptr ? apps::ReadSlmStatus(*p).iterations : 0;
  };

  // Generation 0: full; generations 1,2: incremental.
  std::vector<std::string> last_paths;
  std::uint64_t full_bytes = 0, delta_bytes = 0;
  for (int gen = 0; gen < 3; ++gen) {
    ASSERT_TRUE(c.sim().RunWhile(
        [&] {
          return iterations(0, 0) >=
                 static_cast<std::uint64_t>(50 * (gen + 1));
        },
        c.sim().Now() + 600 * kSecond));
    coord::Coordinator::Options options;
    options.incremental = true;  // agents fall back to full for gen 0
    options.image_prefix = "/ckpt/inc_g" + std::to_string(gen);
    auto stats = c.RunCheckpoint(
        {c.MemberFor(0, pods[0]), c.MemberFor(1, pods[1])}, options);
    ASSERT_TRUE(stats.success);
    last_paths = stats.image_paths;
    cruz::Bytes raw;
    c.fs().ReadFile(last_paths[0], raw);
    if (gen == 0) {
      full_bytes = raw.size();
    } else {
      delta_bytes = raw.size();
    }
  }
  // slm dirties only its boundary rows: deltas are far smaller than the
  // full image (which carries the whole grid).
  EXPECT_LT(delta_bytes, full_bytes / 4);

  // Kill both pods and restart ON SPARES from the last incremental image;
  // the agents resolve the chain through the shared FS.
  c.pods(0).DestroyPod(pods[0]);
  c.pods(1).DestroyPod(pods[1]);
  auto rs = c.RunRestart(
      {c.MemberFor(2, pods[0]), c.MemberFor(3, pods[1])}, last_paths, {});
  ASSERT_TRUE(rs.success);
  std::vector<std::size_t> nodes = {2, 3};
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        return iterations(2, 0) >= base.iterations &&
               iterations(3, 1) >= base.iterations;
      },
      c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 2; ++r) {
    apps::SlmConfig cfg = base;
    cfg.rank = r;
    os::Process* p = c.node(nodes[r]).os().FindProcess(
        c.pods(nodes[r]).ToRealPid(pods[r], vpids[r]));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(apps::ReadSlmStatus(*p).edge_checksum,
              apps::SlmReferenceChecksum(cfg, base.iterations))
        << "rank " << r;
  }
}

// --- copy-on-write -----------------------------------------------------------------

TEST(CopyOnWrite, PodResumesBeforeDiskWriteFinishes) {
  ClusterConfig config;
  config.num_nodes = 2;
  // Very slow disk: the write takes ~1 s, the capture microseconds.
  config.node_template.disk_write_bytes_per_sec = 1 * kMiB;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 256; ++i) {  // ~1 MiB of state
    proc->memory().InstallPage(0x100 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);
  std::uint64_t before = apps::ReadCounter(*proc);

  // Copy-on-write + Fig. 4: the pod should be running again long before
  // the ~1 s disk write completes.
  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.image_prefix = "/ckpt/cow";
  bool finished = false;
  coord::Coordinator::OpStats stats;
  c.coordinator().Checkpoint({c.MemberFor(0, id)}, options,
                             [&](const coord::Coordinator::OpStats& s) {
                               stats = s;
                               finished = true;
                             });
  // 100 ms in (disk write still running), the counter must be moving.
  c.sim().RunFor(100 * kMillisecond);
  EXPECT_FALSE(finished);  // the <done> has not been sent yet
  EXPECT_GT(apps::ReadCounter(*proc), before);

  ASSERT_TRUE(c.sim().RunWhile([&] { return finished; },
                               c.sim().Now() + 600 * kSecond));
  EXPECT_TRUE(stats.success);
  // The image on disk is complete and restorable.
  c.pods(0).DestroyPod(id);
  PodCheckpoint ck = CheckpointEngine::LoadImageChain(
      c.fs(), stats.image_paths[0]);
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), ck);
  CheckpointEngine::ResumePod(c.pods(0), restored);
  c.sim().RunFor(10 * kMillisecond);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  EXPECT_GT(apps::ReadCounter(*rp), 0u);
}

TEST(CopyOnWrite, StreamSurvivesCowCheckpoint) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.node_template.disk_write_bytes_per_sec = 2 * kMiB;
  Cluster c(config);
  os::PodId rp = c.CreatePod(1, "recv");
  net::Ipv4Address rip = c.pods(1).Find(rp)->ip;
  os::Pid rv = c.pods(1).SpawnInPod(rp, "cruz.stream_receiver",
                                    apps::StreamReceiverArgs(9100));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId sp = c.CreatePod(0, "send");
  c.pods(0).SpawnInPod(sp, "cruz.stream_sender",
                       apps::StreamSenderArgs(rip, 9100, 4 * kMiB));
  auto status = [&] {
    os::Process* p =
        c.node(1).os().FindProcess(c.pods(1).ToRealPid(rp, rv));
    return p != nullptr ? apps::ReadStreamStatus(*p) : apps::StreamStatus{};
  };
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return status().bytes > 512 * 1024; },
      c.sim().Now() + 60 * kSecond));
  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.image_prefix = "/ckpt/cowstream";
  auto stats = c.RunCheckpoint(
      {c.MemberFor(0, sp), c.MemberFor(1, rp)}, options);
  ASSERT_TRUE(stats.success);
  apps::StreamStatus last;
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        auto s = status();
        if (s.bytes != 0) last = s;
        return last.bytes >= 4 * kMiB;
      },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(last.mismatches, 0u);
}

// The dirty-page baseline resets at SNAPSHOT time, not at write-out
// completion: an incremental capture taken after a forked (COW) capture
// holds exactly the pages written after the snapshot point — pages that
// only exist in the (conceptually still-being-written) base image do not
// reappear in the delta.
TEST(Incremental, DeltaAfterCowCaptureHoldsOnlyPostSnapshotPages) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 100; ++i) {
    proc->memory().InstallPage(0x1000 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);

  // Forked full capture: snapshot now, materialize later.
  PodSnapshot snap =
      CheckpointEngine::SnapshotPod(c.pods(0), id, CaptureOptions{});
  CheckpointEngine::ResumePod(c.pods(0), id);

  // Writes landing while the background write-out would still be running:
  // one snapshot page, one brand-new page, plus whatever the counter
  // touches while time passes.
  proc->memory().WriteU64((0x1000 + 3) * os::kPageSize + 8, 1);
  proc->memory().WriteU64(0x5000 * os::kPageSize, 2);
  c.sim().RunFor(5 * kMillisecond);

  // The base image materializes only now — after the delta's writes.
  c.fs().WriteFile("/ckpt/cowbase.img", snap.Materialize().Serialize());

  CaptureOptions options;
  options.incremental = true;
  options.parent_image = "/ckpt/cowbase.img";
  options.generation = 1;
  PodCheckpoint delta = CheckpointEngine::CapturePod(c.pods(0), id, options);

  std::set<std::uint64_t> indices;
  for (const PageRecord& p : delta.processes.at(0).pages) {
    indices.insert(p.page_index);
  }
  EXPECT_TRUE(indices.count(0x1000 + 3));
  EXPECT_TRUE(indices.count(0x5000));
  EXPECT_TRUE(indices.count(apps::kStatusAddr / os::kPageSize));
  EXPECT_LT(indices.size(), 8u);  // nothing beyond the post-snapshot set
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (i != 3) EXPECT_FALSE(indices.count(0x1000 + i)) << i;
  }

  // The chain (raw base + compressed delta) restores to current state.
  std::uint64_t at_delta = apps::ReadCounter(*proc);
  c.fs().WriteFile("/ckpt/cowdelta.img", delta.Serialize(true));
  c.pods(0).DestroyPod(id);
  PodCheckpoint merged =
      CheckpointEngine::LoadImageChain(c.fs(), "/ckpt/cowdelta.img");
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), merged);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(apps::ReadCounter(*rp), at_delta);
  EXPECT_EQ(rp->memory().ReadBytes((0x1000 + 5) * os::kPageSize, 8),
            cruz::Bytes(8, 0x42));
}

}  // namespace
}  // namespace cruz::ckpt
