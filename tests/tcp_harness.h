// Test harness wiring two TcpConnections through the simulator with a
// configurable one-way delay, random loss, and per-endpoint "communication
// disabled" switches that emulate the netfilter drop rule Cruz installs
// during checkpoints. No OS layer involved: this exercises the TCP state
// machine in isolation.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "sim/simulator.h"
#include "tcp/connection.h"

namespace cruz::tcp::testing {

class TcpPair {
 public:
  explicit TcpPair(std::uint64_t seed = 1, DurationNs delay = 50 * kMicrosecond)
      : sim(seed), delay_(delay), loss_rng_(sim.rng().Fork()) {
    tuple_a_.local = {net::Ipv4Address::Parse("10.0.0.1"), 4000};
    tuple_a_.remote = {net::Ipv4Address::Parse("10.0.0.2"), 5000};
  }

  // Starts the client side; the server side is created on SYN arrival
  // (emulating a listener).
  void Connect(const TcpConfig& cfg = TcpConfig{}) {
    cfg_ = cfg;
    a = std::make_unique<TcpConnection>(
        sim, cfg_, tuple_a_, MakeOutput(/*from_a=*/true), a_callbacks);
    a->OpenActive();
  }

  // Runs until both sides are established (or deadline).
  bool RunUntilEstablished(DurationNs timeout = 10 * kSecond) {
    return sim.RunWhile(
        [this] {
          return a && b && a->state() == TcpState::kEstablished &&
                 b->state() == TcpState::kEstablished;
        },
        sim.Now() + timeout);
  }

  // Emulates the netfilter rule: while disabled, all segments to/from that
  // endpoint are silently dropped.
  void SetCommDisabled(bool a_side, bool disabled) {
    if (a_side) {
      a_comm_disabled_ = disabled;
    } else {
      b_comm_disabled_ = disabled;
    }
  }

  void set_loss(double p) { loss_ = p; }

  // Replaces endpoint B with a connection restored from `ck` (checkpoint-
  // restart of one end). Returns the pending receive data that the restore
  // engine would feed through the pod's alternate buffer.
  void RestoreB(const TcpConnCheckpoint& ck,
                TcpConnection::Callbacks callbacks = {}) {
    b = TcpConnection::Restore(sim, cfg_, ck, MakeOutput(/*from_a=*/false),
                               std::move(callbacks));
  }
  void RestoreA(const TcpConnCheckpoint& ck,
                TcpConnection::Callbacks callbacks = {}) {
    a = TcpConnection::Restore(sim, cfg_, ck, MakeOutput(/*from_a=*/true),
                               std::move(callbacks));
  }

  std::uint64_t segments_on_wire() const { return segments_on_wire_; }

  sim::Simulator sim;
  TcpConfig cfg_;
  std::unique_ptr<TcpConnection> a;  // active opener
  std::unique_ptr<TcpConnection> b;  // passive opener
  TcpConnection::Callbacks a_callbacks;
  TcpConnection::Callbacks b_callbacks;

 private:
  TcpConnection::OutputFn MakeOutput(bool from_a) {
    return [this, from_a](const net::FourTuple&, const TcpSegment& seg) {
      // Sender-side filter.
      if ((from_a && a_comm_disabled_) || (!from_a && b_comm_disabled_)) {
        return;
      }
      if (loss_ > 0.0 && loss_rng_.NextBernoulli(loss_)) return;
      ++segments_on_wire_;
      // Round-trip through the wire codec so encoding is exercised.
      cruz::Bytes wire = seg.Encode();
      sim.Schedule(delay_, [this, from_a, wire = std::move(wire)] {
        TcpSegment delivered = TcpSegment::Decode(wire);
        if (from_a) {
          // Receiver-side filter.
          if (b_comm_disabled_) return;
          if (!b) {
            if (delivered.syn && !delivered.ack_flag) {
              b = std::make_unique<TcpConnection>(
                  sim, cfg_, tuple_a_.Reversed(),
                  MakeOutput(/*from_a=*/false), b_callbacks);
              b->OpenPassive(delivered);
            }
            return;
          }
          b->OnSegment(delivered);
        } else {
          if (a_comm_disabled_) return;
          if (a) a->OnSegment(delivered);
        }
      });
    };
  }

  net::FourTuple tuple_a_;
  DurationNs delay_;
  double loss_ = 0.0;
  Rng loss_rng_;
  bool a_comm_disabled_ = false;
  bool b_comm_disabled_ = false;
  std::uint64_t segments_on_wire_ = 0;
};

// Deterministic pseudo-random payload for integrity checks.
inline cruz::Bytes PatternBytes(std::size_t n, std::uint64_t seed = 99) {
  Rng rng(seed);
  cruz::Bytes out(n);
  for (auto& byte : out) byte = static_cast<std::uint8_t>(rng.NextU64());
  return out;
}

}  // namespace cruz::tcp::testing
