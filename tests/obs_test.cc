// Unit tests for the observability layer: Tracer (spans, instants, ring
// bound, exports), MetricsRegistry (counters, gauges, histograms, dumps),
// and TraceQuery (filtering, ordering, window counts).
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_query.h"

namespace cruz::obs {
namespace {

// A tracer driven by a hand-cranked clock, so tests control timestamps.
struct ClockedTracer {
  TimeNs now = 0;
  Tracer tracer;

  ClockedTracer() {
    tracer.SetClock([this] { return now; });
  }
};

TEST(Tracer, SpanRecordsBeginAndDuration) {
  ClockedTracer t;
  t.now = 100;
  SpanId id = t.tracer.BeginSpan("coord", "coord.phase.freeze",
                                 TraceAttrs{}.Op(7).Phase("freeze"));
  ASSERT_NE(id, kInvalidSpanId);
  EXPECT_EQ(t.tracer.open_spans(), 1u);
  EXPECT_TRUE(t.tracer.events().empty());  // not completed yet

  t.now = 350;
  t.tracer.EndSpan(id);
  ASSERT_EQ(t.tracer.events().size(), 1u);
  const TraceEvent& e = t.tracer.events().front();
  EXPECT_EQ(e.kind, EventKind::kSpan);
  EXPECT_EQ(e.ts, 100u);
  EXPECT_EQ(e.dur, 250u);
  EXPECT_EQ(e.end_ts(), 350u);
  EXPECT_EQ(e.category, "coord");
  EXPECT_EQ(e.name, "coord.phase.freeze");
  EXPECT_EQ(e.attrs.op, 7u);
  EXPECT_EQ(e.attrs.phase, "freeze");
  EXPECT_EQ(t.tracer.open_spans(), 0u);
}

TEST(Tracer, EndSpanAppendsExtraArgs) {
  ClockedTracer t;
  SpanId id = t.tracer.BeginSpan("agent", "agent.save",
                                 TraceAttrs{}.Arg("mode", "stop-the-world"));
  t.now = 10;
  t.tracer.EndSpan(id, {{"outcome", "ok"}});
  const TraceEvent& e = t.tracer.events().front();
  ASSERT_EQ(e.attrs.args.size(), 2u);
  EXPECT_EQ(e.attrs.args[0].first, "mode");
  EXPECT_EQ(e.attrs.args[1].first, "outcome");
  EXPECT_EQ(e.attrs.args[1].second, "ok");
}

TEST(Tracer, InstantStampsCurrentTime) {
  ClockedTracer t;
  t.now = 42;
  t.tracer.Instant("tcp", "tcp.rto", TraceAttrs{}.Conn("a<->b"));
  ASSERT_EQ(t.tracer.events().size(), 1u);
  EXPECT_EQ(t.tracer.events().front().kind, EventKind::kInstant);
  EXPECT_EQ(t.tracer.events().front().ts, 42u);
  EXPECT_EQ(t.tracer.events().front().dur, 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  ClockedTracer t;
  t.tracer.set_enabled(false);
  EXPECT_EQ(t.tracer.BeginSpan("c", "n"), kInvalidSpanId);
  t.tracer.Instant("c", "n");
  t.tracer.EndSpan(kInvalidSpanId);    // must be a safe no-op
  t.tracer.EndSpan(99999);             // unknown id ignored
  EXPECT_TRUE(t.tracer.events().empty());
}

TEST(Tracer, RingDropsOldestBeyondCapacity) {
  ClockedTracer t;
  t.tracer.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    t.now = static_cast<TimeNs>(i);
    t.tracer.Instant("c", "e" + std::to_string(i));
  }
  EXPECT_EQ(t.tracer.events().size(), 4u);
  EXPECT_EQ(t.tracer.dropped(), 6u);
  EXPECT_EQ(t.tracer.events().front().name, "e6");
  EXPECT_EQ(t.tracer.events().back().name, "e9");
}

TEST(Tracer, VerboseSampleGatesOnVerboseFlag) {
  ClockedTracer t;
  EXPECT_FALSE(t.tracer.VerboseSample());  // verbose off: never sampled
  t.tracer.set_verbose(true);
  EXPECT_EQ(t.tracer.sampling(), 1u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(t.tracer.VerboseSample());
}

TEST(Tracer, VerboseSampleKeepsOneInN) {
  ClockedTracer t;
  t.tracer.set_verbose(true);
  t.tracer.SetSampling(4);
  int kept = 0;
  for (int i = 0; i < 16; ++i) {
    bool keep = t.tracer.VerboseSample();
    EXPECT_EQ(keep, i % 4 == 0) << "call " << i;
    if (keep) ++kept;
  }
  EXPECT_EQ(kept, 4);
  // Sampling 0 is clamped to 1 (keep everything).
  t.tracer.SetSampling(0);
  EXPECT_EQ(t.tracer.sampling(), 1u);
  EXPECT_TRUE(t.tracer.VerboseSample());
}

TEST(Tracer, DefaultSamplingExportsAreByteIdentical) {
  // The same event sequence through two tracers — one never touched by
  // the sampling API, one explicitly set to 1 — must export identically.
  auto drive = [](Tracer& tracer, TimeNs* now) {
    for (int i = 0; i < 8; ++i) {
      *now = static_cast<TimeNs>(i * 10);
      if (tracer.VerboseSample()) {
        tracer.Instant("tcp", "tcp.tx", TraceAttrs{}.Arg("seq", i));
      }
      tracer.Instant("coord", "beat");
    }
  };
  ClockedTracer plain;
  plain.tracer.set_verbose(true);
  drive(plain.tracer, &plain.now);
  ClockedTracer sampled;
  sampled.tracer.set_verbose(true);
  sampled.tracer.SetSampling(1);
  drive(sampled.tracer, &sampled.now);
  EXPECT_EQ(plain.tracer.ExportJsonl(), sampled.tracer.ExportJsonl());
  EXPECT_EQ(plain.tracer.ExportChromeJson(),
            sampled.tracer.ExportChromeJson());
}

TEST(Tracer, SamplingDecimatesOnlyVerboseEvents) {
  ClockedTracer t;
  t.tracer.set_verbose(true);
  t.tracer.SetSampling(3);
  int verbose_kept = 0;
  for (int i = 0; i < 9; ++i) {
    if (t.tracer.VerboseSample()) {
      t.tracer.Instant("tcp", "tcp.rx");
      ++verbose_kept;
    }
    t.tracer.Instant("ckpt", "page");  // non-verbose, never decimated
  }
  EXPECT_EQ(verbose_kept, 3);
  int tcp = 0, ckpt = 0;
  for (const TraceEvent& e : t.tracer.events()) {
    if (e.category == "tcp") ++tcp;
    if (e.category == "ckpt") ++ckpt;
  }
  EXPECT_EQ(tcp, 3);
  EXPECT_EQ(ckpt, 9);
}

TEST(Tracer, ClearResetsEventsAndDropCount) {
  ClockedTracer t;
  t.tracer.set_capacity(1);
  t.tracer.Instant("c", "a");
  t.tracer.Instant("c", "b");
  EXPECT_EQ(t.tracer.dropped(), 1u);
  t.tracer.Clear();
  EXPECT_TRUE(t.tracer.events().empty());
  EXPECT_EQ(t.tracer.dropped(), 0u);
}

TEST(Tracer, ChromeExportShape) {
  ClockedTracer t;
  t.now = 1500;  // 1.5 us
  SpanId id = t.tracer.BeginSpan("coord", "coord.op.checkpoint",
                                 TraceAttrs{}.Op(3).Agent("node0"));
  t.now = 2500;
  t.tracer.EndSpan(id);
  t.tracer.Instant("fault", "fault.msg-drop");
  std::string json = t.tracer.ExportChromeJson();
  // Span event with microsecond timestamps at ns precision.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
  // Instant event.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Per-agent thread-name metadata track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node0\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Tracer, JsonlOneLinePerEvent) {
  ClockedTracer t;
  t.tracer.Instant("a", "one");
  t.now = 5;
  SpanId id = t.tracer.BeginSpan("b", "two");
  t.now = 9;
  t.tracer.EndSpan(id);
  std::string jsonl = t.tracer.ExportJsonl();
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"kind\":\"instant\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_ns\":5,\"dur_ns\":4"), std::string::npos);
}

// An empty ring must still export well-formed artifacts: Chrome JSON
// with an empty traceEvents array and a zero drop count, and an empty
// JSONL document (zero lines, not a blank line).
TEST(Tracer, EmptyRingExportsAreWellFormed) {
  ClockedTracer t;
  EXPECT_EQ(t.tracer.ExportChromeJson(),
            "{\"traceEvents\":[\n],"
            "\"displayTimeUnit\":\"ms\","
            "\"otherData\":{\"dropped\":\"0\"}}\n");
  EXPECT_EQ(t.tracer.ExportJsonl(), "");
}

// When the ring overflows, the exports must account for the loss: the
// drop count appears in the Chrome JSON metadata and the JSONL line
// count matches the surviving events exactly.
TEST(Tracer, OverflowDropCountSurfacesInExports) {
  ClockedTracer t;
  t.tracer.set_capacity(3);
  for (int i = 0; i < 8; ++i) {
    t.now = static_cast<TimeNs>(i);
    SpanId id = t.tracer.BeginSpan("c", "span" + std::to_string(i));
    t.tracer.EndSpan(id);
  }
  EXPECT_EQ(t.tracer.dropped(), 5u);
  std::string chrome = t.tracer.ExportChromeJson();
  EXPECT_NE(chrome.find("\"dropped\":\"5\""), std::string::npos);
  // The oldest events are gone from the export, the newest survive.
  EXPECT_EQ(chrome.find("span0"), std::string::npos);
  EXPECT_NE(chrome.find("span7"), std::string::npos);
  std::string jsonl = t.tracer.ExportJsonl();
  std::size_t lines = 0;
  for (char ch : jsonl) lines += ch == '\n';
  EXPECT_EQ(lines, 3u);
}

TEST(Tracer, ExportsEscapeControlAndQuoteCharacters) {
  ClockedTracer t;
  t.tracer.Instant("c", "evil",
                   TraceAttrs{}.Arg("k", "a\"b\\c\nd\te\x01"));
  std::string jsonl = t.tracer.ExportJsonl();
  EXPECT_NE(jsonl.find("a\\\"b\\\\c\\nd\\te\\u0001"), std::string::npos);
  // The raw control byte must not leak into the output.
  EXPECT_EQ(jsonl.find('\x01'), std::string::npos);
}

TEST(Metrics, CountersGaugesHistograms) {
  MetricsRegistry m;
  m.counter("coord.ops_total").Add();
  m.counter("coord.ops_total").Add(4);
  EXPECT_EQ(m.counter("coord.ops_total").value(), 5u);

  m.gauge("ckpt.codec_ratio").Set(0.5);
  EXPECT_DOUBLE_EQ(m.gauge("ckpt.codec_ratio").value(), 0.5);

  Histogram& h = m.histogram("coord.downtime_us");
  h.Record(3);
  h.Record(5);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 108u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 36.0);
  // Power-of-two buckets: 3 -> 2^2, 5 -> 2^3, 100 -> 2^7.
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

// Degenerate histogram: identical samples collapse into a single
// power-of-two bucket, and every summary statistic must still be exact
// (min == max == mean, all other buckets empty).
TEST(Metrics, SingleBucketHistogramSummaryIsExact) {
  MetricsRegistry m;
  Histogram& h = m.histogram("agent.save_us");
  for (int i = 0; i < 7; ++i) h.Record(6);  // 6 -> 2^3 for every sample
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 42u);
  EXPECT_EQ(h.min(), 6u);
  EXPECT_EQ(h.max(), 6u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket(i), i == 3 ? 7u : 0u) << "bucket " << i;
  }

  std::string dump = m.TextDump();
  EXPECT_NE(dump.find("agent.save_us_count 7"), std::string::npos);
  EXPECT_NE(dump.find("agent.save_us_sum 42"), std::string::npos);
  EXPECT_NE(dump.find("agent.save_us_min 6"), std::string::npos);
  EXPECT_NE(dump.find("agent.save_us_max 6"), std::string::npos);
  EXPECT_NE(dump.find("agent.save_us_mean 6"), std::string::npos);
}

// An empty histogram reports zeros, not garbage: min() must not leak
// its ~0 sentinel and mean() must not divide by zero.
TEST(Metrics, EmptyHistogramSummaryIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// Quantiles from power-of-two buckets: the answer is the upper bound of
// the bucket holding the rank-ceil(q*count) sample, capped at the exact
// max. Documented semantics, locked here.
TEST(Metrics, HistogramPercentileUsesBucketUpperBounds) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  h.Record(3);    // 2^2 bucket
  h.Record(5);    // 2^3 bucket
  h.Record(100);  // 2^7 bucket
  EXPECT_EQ(h.Percentile(0.01), 4u);   // rank 1 -> bucket upper bound 4
  EXPECT_EQ(h.Percentile(0.5), 8u);    // rank 2 -> upper bound 8
  EXPECT_EQ(h.Percentile(0.9), 100u);  // rank 3 -> 128 capped at max
  EXPECT_EQ(h.Percentile(1.0), 100u);  // p100 is exactly the max

  // Single-value histograms answer exactly at every quantile.
  Histogram one;
  one.Record(6);
  EXPECT_EQ(one.Percentile(0.001), 6u);
  EXPECT_EQ(one.Percentile(1.0), 6u);

  // A restored snapshot (bucket counts + scalars, no raw samples) must
  // answer identically — cruz_analyze re-exposition depends on it.
  Histogram restored;
  restored.Restore(3, 108, 3, 100);
  restored.RestoreBucket(2, 1);
  restored.RestoreBucket(3, 1);
  restored.RestoreBucket(7, 1);
  EXPECT_EQ(restored.Percentile(0.5), 8u);
  EXPECT_EQ(restored.Percentile(1.0), 100u);
}

// Golden test for the Prometheus text exposition (format v0.0.4): names
// sanitized under a cruz_ prefix, one # TYPE line per metric, histogram
// buckets cumulative over the power-of-two boundaries up to the highest
// non-empty bucket, then +Inf / _sum / _count, then synthesized
// quantile lines for non-empty histograms. Byte-exact so scrapers can
// rely on the rendering.
TEST(Metrics, PrometheusExpositionGolden) {
  MetricsRegistry m;
  m.counter("agent.save-errors").Add(1);  // '-' must sanitize to '_'
  m.counter("coord.ops_total").Add(5);
  m.gauge("ckpt.codec_ratio").Set(0.5);
  Histogram& h = m.histogram("coord.downtime_us");
  h.Record(3);    // 2^2 bucket
  h.Record(5);    // 2^3 bucket
  h.Record(100);  // 2^7 bucket
  m.histogram("zz.empty");  // no samples: summary lines only

  const char* golden =
      "# TYPE cruz_agent_save_errors counter\n"
      "cruz_agent_save_errors 1\n"
      "# TYPE cruz_coord_ops_total counter\n"
      "cruz_coord_ops_total 5\n"
      "# TYPE cruz_ckpt_codec_ratio gauge\n"
      "cruz_ckpt_codec_ratio 0.5\n"
      "# TYPE cruz_coord_downtime_us histogram\n"
      "cruz_coord_downtime_us_bucket{le=\"1\"} 0\n"
      "cruz_coord_downtime_us_bucket{le=\"2\"} 0\n"
      "cruz_coord_downtime_us_bucket{le=\"4\"} 1\n"
      "cruz_coord_downtime_us_bucket{le=\"8\"} 2\n"
      "cruz_coord_downtime_us_bucket{le=\"16\"} 2\n"
      "cruz_coord_downtime_us_bucket{le=\"32\"} 2\n"
      "cruz_coord_downtime_us_bucket{le=\"64\"} 2\n"
      "cruz_coord_downtime_us_bucket{le=\"128\"} 3\n"
      "cruz_coord_downtime_us_bucket{le=\"+Inf\"} 3\n"
      "cruz_coord_downtime_us_sum 108\n"
      "cruz_coord_downtime_us_count 3\n"
      "cruz_coord_downtime_us{quantile=\"0.5\"} 8\n"
      "cruz_coord_downtime_us{quantile=\"0.9\"} 100\n"
      "cruz_coord_downtime_us{quantile=\"0.99\"} 100\n"
      "cruz_coord_downtime_us{quantile=\"0.999\"} 100\n"
      "# TYPE cruz_zz_empty histogram\n"
      "cruz_zz_empty_bucket{le=\"+Inf\"} 0\n"
      "cruz_zz_empty_sum 0\n"
      "cruz_zz_empty_count 0\n";
  EXPECT_EQ(m.ExportPrometheus(), golden);
}

TEST(Metrics, DumpsAreSortedAndReset) {
  MetricsRegistry m;
  m.counter("z.last").Add(2);
  m.counter("a.first").Add(1);
  m.histogram("h.lat").Record(10);
  std::string dump = m.TextDump();
  EXPECT_LT(dump.find("a.first"), dump.find("z.last"));
  EXPECT_NE(dump.find("h.lat_count 1"), std::string::npos);
  std::string json = m.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  m.Reset();
  EXPECT_EQ(m.counter("a.first").value(), 0u);
  EXPECT_EQ(m.histogram("h.lat").count(), 0u);
}

// Builds a small timeline for query tests:
//   t=10..50  span  coord/coord.phase.freeze   op=1
//   t=20      inst  agent/agent.save           op=1 agent=n0 (as instant)
//   t=60..90  span  coord/coord.phase.commit   op=1
//   t=70      inst  tcp/tcp.rto
//   t=95      inst  tcp/tcp.rto
struct QueryFixture {
  ClockedTracer t;

  QueryFixture() {
    Tracer& tr = t.tracer;
    t.now = 10;
    SpanId freeze = tr.BeginSpan("coord", "coord.phase.freeze",
                                 TraceAttrs{}.Op(1).Phase("freeze"));
    t.now = 20;
    tr.Instant("agent", "agent.save", TraceAttrs{}.Op(1).Agent("n0"));
    t.now = 50;
    tr.EndSpan(freeze);
    t.now = 60;
    SpanId commit = tr.BeginSpan("coord", "coord.phase.commit",
                                 TraceAttrs{}.Op(1).Phase("commit"));
    t.now = 70;
    tr.Instant("tcp", "tcp.rto");
    t.now = 90;
    tr.EndSpan(commit);
    t.now = 95;
    tr.Instant("tcp", "tcp.rto");
  }
};

TEST(TraceQuery, FiltersAndOrdering) {
  QueryFixture f;
  TraceQuery q(f.t.tracer);
  // Events come back sorted by begin time, not completion order: the
  // freeze span (begun at 10, completed at 50) precedes the save instant.
  ASSERT_EQ(q.events().size(), 5u);
  EXPECT_EQ(q.events()[0].name, "coord.phase.freeze");
  EXPECT_EQ(q.events()[1].name, "agent.save");

  EXPECT_EQ(q.Count(TraceQuery::Filter{}.Category("coord")), 2u);
  EXPECT_EQ(q.Count(TraceQuery::Filter{}.Op(1)), 3u);
  EXPECT_EQ(q.Count(TraceQuery::Filter{}.Agent("n0")), 1u);
  EXPECT_EQ(q.Named("tcp.rto").size(), 2u);
  EXPECT_EQ(q.Count(TraceQuery::Filter{}.Name("nope")), 0u);
}

TEST(TraceQuery, FirstLastAndWindows) {
  QueryFixture f;
  TraceQuery q(f.t.tracer);
  const TraceEvent* first = q.First(TraceQuery::Filter{}.Name("tcp.rto"));
  const TraceEvent* last = q.Last(TraceQuery::Filter{}.Name("tcp.rto"));
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(first->ts, 70u);
  EXPECT_EQ(last->ts, 95u);
  EXPECT_EQ(q.First(TraceQuery::Filter{}.Name("nope")), nullptr);

  // CountBetween is inclusive on both ends.
  TraceQuery::Filter rto = TraceQuery::Filter{}.Name("tcp.rto");
  EXPECT_EQ(q.CountBetween(rto, 70, 95), 2u);
  EXPECT_EQ(q.CountBetween(rto, 71, 94), 0u);

  EXPECT_EQ(q.MaxDuration(TraceQuery::Filter{}.Category("coord")), 40u);
  EXPECT_EQ(q.MaxDuration(TraceQuery::Filter{}.Name("nope")), 0u);
}

TEST(TraceQuery, WithinChecksFullContainment) {
  QueryFixture f;
  TraceQuery q(f.t.tracer);
  const TraceEvent* freeze =
      q.First(TraceQuery::Filter{}.Name("coord.phase.freeze"));
  const TraceEvent* commit =
      q.First(TraceQuery::Filter{}.Name("coord.phase.commit"));
  const TraceEvent* save = q.First(TraceQuery::Filter{}.Name("agent.save"));
  ASSERT_NE(freeze, nullptr);
  ASSERT_NE(commit, nullptr);
  ASSERT_NE(save, nullptr);
  EXPECT_TRUE(TraceQuery::Within(*save, *freeze));
  EXPECT_FALSE(TraceQuery::Within(*save, *commit));
  EXPECT_FALSE(TraceQuery::Within(*commit, *freeze));
}

}  // namespace
}  // namespace cruz::obs
