// Unit and integration tests for the TCP implementation: handshake, data
// transfer, loss recovery, Nagle/CORK, close semantics, and the
// checkpoint-restart mechanics of §4.1.
#include <gtest/gtest.h>

#include "common/error.h"
#include "tcp/connection.h"
#include "tcp/recv_buffer.h"
#include "tcp/segment.h"
#include "tcp/send_buffer.h"
#include "tcp_harness.h"

namespace cruz::tcp {
namespace {

using testing::PatternBytes;
using testing::TcpPair;

// --- segment codec ----------------------------------------------------------

TEST(Segment, RoundTrip) {
  TcpSegment s;
  s.src_port = 1234;
  s.dst_port = 80;
  s.seq = 0xDEADBEEF;
  s.ack = 0x12345678;
  s.syn = true;
  s.ack_flag = true;
  s.window = 5840;
  s.mss_option = 1460;
  s.payload = {1, 2, 3};
  TcpSegment t = TcpSegment::Decode(s.Encode());
  EXPECT_EQ(t.src_port, s.src_port);
  EXPECT_EQ(t.dst_port, s.dst_port);
  EXPECT_EQ(t.seq, s.seq);
  EXPECT_EQ(t.ack, s.ack);
  EXPECT_TRUE(t.syn);
  EXPECT_TRUE(t.ack_flag);
  EXPECT_FALSE(t.fin);
  EXPECT_FALSE(t.rst);
  EXPECT_EQ(t.window, 5840);
  EXPECT_EQ(t.mss_option, 1460);
  EXPECT_EQ(t.payload, s.payload);
}

TEST(Segment, SeqLenCountsFlags) {
  TcpSegment s;
  s.payload = {1, 2, 3};
  EXPECT_EQ(s.SeqLen(), 3u);
  s.syn = true;
  EXPECT_EQ(s.SeqLen(), 4u);
  s.fin = true;
  EXPECT_EQ(s.SeqLen(), 5u);
}

TEST(Segment, DecodeRejectsBadOffset) {
  TcpSegment s;
  Bytes wire = s.Encode();
  wire[12] = 0x30;  // data offset 3 < 5
  EXPECT_THROW(TcpSegment::Decode(wire), cruz::CodecError);
}

TEST(Segment, ToStringNames) {
  TcpSegment s;
  s.syn = true;
  s.ack_flag = true;
  EXPECT_NE(s.ToString().find("SYN,ACK"), std::string::npos);
}

// --- sequence arithmetic ------------------------------------------------------

TEST(Seq, WrapAroundComparisons) {
  Seq near_max = 0xFFFFFFF0u;
  Seq wrapped = 0x10u;
  EXPECT_TRUE(SeqLt(near_max, wrapped));
  EXPECT_TRUE(SeqGt(wrapped, near_max));
  EXPECT_EQ(SeqDiff(near_max, wrapped), 0x20u);
}

// --- send buffer ---------------------------------------------------------------

TEST(SendBuffer, PacketizesAtMss) {
  SendBuffer sb(100000, 1000);
  Bytes data = PatternBytes(2500);
  EXPECT_EQ(sb.Append(data, 0), 2500u);
  ASSERT_EQ(sb.segments().size(), 3u);
  EXPECT_EQ(sb.segments()[0].data.size(), 1000u);
  EXPECT_EQ(sb.segments()[1].data.size(), 1000u);
  EXPECT_EQ(sb.segments()[2].data.size(), 500u);
  EXPECT_EQ(sb.segments()[2].seq, 2000u);
}

TEST(SendBuffer, AppendsToUnsealedTail) {
  SendBuffer sb(100000, 1000);
  sb.Append(PatternBytes(400), 0);
  sb.Append(PatternBytes(300), 400);
  ASSERT_EQ(sb.segments().size(), 1u);
  EXPECT_EQ(sb.segments()[0].data.size(), 700u);
}

TEST(SendBuffer, SealedTailNotExtended) {
  SendBuffer sb(100000, 1000);
  sb.Append(PatternBytes(400), 0);
  sb.MarkTransmitted(0);
  sb.Append(PatternBytes(300), 400);
  ASSERT_EQ(sb.segments().size(), 2u);
  EXPECT_EQ(sb.segments()[0].data.size(), 400u);
  EXPECT_EQ(sb.segments()[1].seq, 400u);
}

TEST(SendBuffer, RespectsCapacity) {
  SendBuffer sb(1000, 600);
  EXPECT_EQ(sb.Append(PatternBytes(1500), 0), 1000u);
  EXPECT_EQ(sb.FreeBytes(), 0u);
}

TEST(SendBuffer, AckRemovesWholeSegments) {
  SendBuffer sb(100000, 1000);
  sb.Append(PatternBytes(2500), 0);
  EXPECT_EQ(sb.AckUpTo(2000), 2000u);
  ASSERT_EQ(sb.segments().size(), 1u);
  EXPECT_EQ(sb.segments()[0].seq, 2000u);
}

TEST(SendBuffer, PartialAckTrimsSegment) {
  SendBuffer sb(100000, 1000);
  Bytes data = PatternBytes(1000);
  sb.Append(data, 0);
  EXPECT_EQ(sb.AckUpTo(300), 300u);
  ASSERT_EQ(sb.segments().size(), 1u);
  EXPECT_EQ(sb.segments()[0].seq, 300u);
  EXPECT_EQ(sb.segments()[0].data.size(), 700u);
  EXPECT_EQ(sb.segments()[0].data[0], data[300]);
}

TEST(SendBuffer, AppendSealedRequiresContiguity) {
  SendBuffer sb(100000, 1000);
  sb.AppendSealed(PatternBytes(100), 50);
  sb.AppendSealed(PatternBytes(200), 150);
  EXPECT_EQ(sb.TotalBytes(), 300u);
  EXPECT_THROW(sb.AppendSealed(PatternBytes(10), 999), cruz::InvariantError);
}

TEST(SendBuffer, SegmentAtFindsBySeq) {
  SendBuffer sb(100000, 1000);
  sb.Append(PatternBytes(2000), 100);
  EXPECT_NE(sb.SegmentAt(100), nullptr);
  EXPECT_NE(sb.SegmentAt(1100), nullptr);
  EXPECT_EQ(sb.SegmentAt(500), nullptr);
}

// --- recv buffer -----------------------------------------------------------------

TEST(RecvBuffer, InOrderDelivery) {
  RecvBuffer rb(10000, 100);
  Bytes data = PatternBytes(50);
  EXPECT_TRUE(rb.Insert(100, data));
  EXPECT_EQ(rb.rcv_nxt(), 150u);
  Bytes out;
  EXPECT_EQ(rb.Read(out, 100, false), 50u);
  EXPECT_EQ(out, data);
}

TEST(RecvBuffer, DuplicateTrimmed) {
  RecvBuffer rb(10000, 100);
  Bytes data = PatternBytes(50);
  rb.Insert(100, data);
  EXPECT_FALSE(rb.Insert(100, data));  // full duplicate
  EXPECT_EQ(rb.ReadableBytes(), 50u);
  // Overlapping: first 25 bytes duplicate, next 25 new.
  Bytes more = PatternBytes(50, 7);
  rb.Insert(125, more);
  EXPECT_EQ(rb.rcv_nxt(), 175u);
  EXPECT_EQ(rb.ReadableBytes(), 75u);
}

TEST(RecvBuffer, OutOfOrderReassembly) {
  RecvBuffer rb(10000, 0);
  Bytes first = PatternBytes(100, 1);
  Bytes second = PatternBytes(100, 2);
  EXPECT_FALSE(rb.Insert(100, second));  // gap
  EXPECT_EQ(rb.ReadableBytes(), 0u);
  EXPECT_TRUE(rb.Insert(0, first));  // gap fills, both deliverable
  EXPECT_EQ(rb.rcv_nxt(), 200u);
  Bytes out;
  rb.Read(out, 200, false);
  Bytes expect = first;
  expect.insert(expect.end(), second.begin(), second.end());
  EXPECT_EQ(out, expect);
}

TEST(RecvBuffer, PeekDoesNotConsume) {
  RecvBuffer rb(10000, 0);
  rb.Insert(0, PatternBytes(30));
  Bytes out;
  EXPECT_EQ(rb.Read(out, 100, true), 30u);
  EXPECT_EQ(rb.ReadableBytes(), 30u);
  Bytes out2;
  rb.PeekAll(out2);
  EXPECT_EQ(out2, out);
  EXPECT_EQ(rb.ReadableBytes(), 30u);
}

TEST(RecvBuffer, WindowShrinksWithOccupancy) {
  RecvBuffer rb(1000, 0);
  EXPECT_EQ(rb.Window(), 1000u);
  rb.Insert(0, PatternBytes(400));
  EXPECT_EQ(rb.Window(), 600u);
  Bytes out;
  rb.Read(out, 400, false);
  EXPECT_EQ(rb.Window(), 1000u);
}

TEST(RecvBuffer, BeyondWindowTrimmed) {
  RecvBuffer rb(100, 0);
  EXPECT_TRUE(rb.Insert(0, PatternBytes(200)));
  EXPECT_EQ(rb.ReadableBytes(), 100u);  // only the window's worth accepted
}

TEST(RecvBuffer, ConsumeFinAdvances) {
  RecvBuffer rb(100, 10);
  rb.ConsumeFin();
  EXPECT_EQ(rb.rcv_nxt(), 11u);
}

// --- connection: handshake and data -----------------------------------------

TEST(Connection, HandshakeEstablishes) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  EXPECT_EQ(p.a->state(), TcpState::kEstablished);
  EXPECT_EQ(p.b->state(), TcpState::kEstablished);
  EXPECT_EQ(p.a->snd_nxt(), p.a->snd_una());
}

TEST(Connection, SmallMessageDelivered) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes msg = PatternBytes(100);
  EXPECT_EQ(p.a->Send(msg), 100);
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 100; },
                             p.sim.Now() + kSecond));
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 1000), 100);
  EXPECT_EQ(out, msg);
}

TEST(Connection, ReceiveBeforeDataReturnsEagain) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 100), SysErr(CRUZ_EAGAIN));
}

TEST(Connection, PeekLeavesDataReadable) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->Send(PatternBytes(64));
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 64; },
                             p.sim.Now() + kSecond));
  Bytes peeked, read;
  EXPECT_EQ(p.b->Receive(peeked, 100, /*peek=*/true), 64);
  EXPECT_EQ(p.b->Receive(read, 100), 64);
  EXPECT_EQ(peeked, read);
}

// Transfers `total` bytes a->b with app-level pumps; returns received bytes.
Bytes Transfer(TcpPair& p, std::size_t total, std::uint64_t seed = 99) {
  Bytes data = PatternBytes(total, seed);
  std::size_t sent = 0;
  Bytes received;
  auto pump_send = [&] {
    while (sent < total) {
      SysResult r = p.a->Send(
          ByteSpan(data.data() + sent, std::min<std::size_t>(
                                           8192, total - sent)));
      if (r <= 0) break;
      sent += static_cast<std::size_t>(r);
    }
  };
  p.sim.RunWhile(
      [&] {
        pump_send();
        Bytes chunk;
        while (p.b && p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        return received.size() >= total;
      },
      p.sim.Now() + 600 * kSecond);
  return received;
}

TEST(Connection, BulkTransferIntegrity) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes expect = PatternBytes(1 << 20, 5);
  Bytes got = Transfer(p, 1 << 20, 5);
  EXPECT_EQ(got.size(), expect.size());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(p.a->retransmissions(), 0u);
}

TEST(Connection, BulkTransferWithLoss) {
  TcpPair p(/*seed=*/3);
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.set_loss(0.05);
  Bytes expect = PatternBytes(256 * 1024, 6);
  Bytes got = Transfer(p, 256 * 1024, 6);
  EXPECT_EQ(got, expect);
  EXPECT_GT(p.a->retransmissions(), 0u);
}

TEST(Connection, SendBeforeEstablishedReturnsEagain) {
  TcpPair p;
  p.Connect();
  Bytes msg = {1, 2, 3};
  EXPECT_EQ(p.a->Send(msg), SysErr(CRUZ_EAGAIN));
}

TEST(Connection, BidirectionalTransfer) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes msg_ab = PatternBytes(10000, 1);
  Bytes msg_ba = PatternBytes(10000, 2);
  p.a->Send(msg_ab);
  p.b->Send(msg_ba);
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        return p.a->ReadableBytes() >= 10000 &&
               p.b->ReadableBytes() >= 10000;
      },
      p.sim.Now() + 10 * kSecond));
  Bytes got_ab, got_ba;
  p.b->Receive(got_ab, 20000);
  p.a->Receive(got_ba, 20000);
  EXPECT_EQ(got_ab, msg_ab);
  EXPECT_EQ(got_ba, msg_ba);
}

// --- Nagle / CORK ---------------------------------------------------------

TEST(Connection, NagleCoalescesSmallWrites) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  std::uint64_t before = p.a->segments_sent();
  // 50 tiny writes back-to-back; Nagle should coalesce all but the first.
  for (int i = 0; i < 50; ++i) p.a->Send(PatternBytes(10, i));
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 500; },
                             p.sim.Now() + 10 * kSecond));
  std::uint64_t data_segments = p.a->segments_sent() - before;
  EXPECT_LE(data_segments, 5u);  // 1 immediate + coalesced follow-ups
}

TEST(Connection, NagleOffSendsEagerly) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->SetNagle(false);
  std::uint64_t before = p.a->segments_sent();
  for (int i = 0; i < 10; ++i) p.a->Send(PatternBytes(10, i));
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 100; },
                             p.sim.Now() + 10 * kSecond));
  // Without Nagle each write within cwnd goes straight out. Writes are
  // issued in one burst, so some tail merging into the unsealed segment is
  // possible, but clearly more than the Nagle case.
  EXPECT_GE(p.a->segments_sent() - before, 1u);
  EXPECT_TRUE(p.b != nullptr);
}

TEST(Connection, CorkHoldsPartialSegments) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->SetCork(true);
  p.a->Send(PatternBytes(100));
  p.sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(p.b->ReadableBytes(), 0u);  // held by CORK
  p.a->SetCork(false);                  // uncork flushes
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 100; },
                             p.sim.Now() + kSecond));
}

// --- close / abort -----------------------------------------------------------

TEST(Connection, OrderlyCloseBothWays) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->state() == TcpState::kCloseWait; },
      p.sim.Now() + 10 * kSecond));
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 100), 0);  // EOF
  p.b->Close();
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->state() == TcpState::kClosed; },
      p.sim.Now() + 10 * kSecond));
  // A passes through TIME_WAIT and then fully closes.
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->state() == TcpState::kClosed; },
      p.sim.Now() + 60 * kSecond));
}

TEST(Connection, CloseFlushesQueuedDataFirst) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes msg = PatternBytes(50000);
  std::size_t sent = 0;
  while (sent < msg.size()) {
    SysResult r = p.a->Send(ByteSpan(msg.data() + sent, msg.size() - sent));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
  }
  ASSERT_EQ(sent, msg.size());
  p.a->Close();
  Bytes received;
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        Bytes chunk;
        while (p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        return received.size() >= msg.size() &&
               p.b->state() == TcpState::kCloseWait;
      },
      p.sim.Now() + 60 * kSecond));
  EXPECT_EQ(received, msg);
}

TEST(Connection, SendAfterCloseReturnsEpipe) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.a->Close();
  Bytes msg = {1};
  EXPECT_EQ(p.a->Send(msg), SysErr(CRUZ_EPIPE));
}

TEST(Connection, AbortDeliversReset) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Errno b_err = CRUZ_EOK;
  // Note: callbacks were default-initialized; attach via a fresh segment
  // path by checking pending_error instead.
  p.a->Abort();
  EXPECT_EQ(p.a->state(), TcpState::kClosed);
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.b->state() == TcpState::kClosed; },
      p.sim.Now() + kSecond));
  EXPECT_EQ(p.b->pending_error(), CRUZ_ECONNRESET);
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 10), SysErr(CRUZ_ECONNRESET));
  (void)b_err;
}

// --- flow control ---------------------------------------------------------------

TEST(Connection, SenderRespectsReceiverWindow) {
  TcpConfig cfg;
  cfg.recv_buffer_capacity = 8 * 1024;  // small receiver
  TcpPair p;
  p.Connect(cfg);
  ASSERT_TRUE(p.RunUntilEstablished());
  // Fill without the receiver draining: sender must stop at ~8 KiB.
  Bytes data = PatternBytes(64 * 1024);
  std::size_t sent = 0;
  while (sent < data.size()) {
    SysResult r = p.a->Send(ByteSpan(data.data() + sent, 8192));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
    p.sim.RunFor(10 * kMillisecond);
  }
  p.sim.RunFor(2 * kSecond);
  EXPECT_LE(p.b->ReadableBytes(), 8 * 1024u);
  // Drain and verify the transfer completes (window reopens).
  Bytes received;
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        Bytes chunk;
        while (p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        while (sent < data.size()) {
          SysResult r = p.a->Send(ByteSpan(data.data() + sent,
                                           data.size() - sent));
          if (r <= 0) break;
          sent += static_cast<std::size_t>(r);
        }
        return received.size() >= data.size();
      },
      p.sim.Now() + 120 * kSecond));
  EXPECT_EQ(received, data);
}

// --- retransmission behaviour ------------------------------------------------

TEST(Connection, RetransmissionRecoversDroppedBurst) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // Disable B's communication (netfilter emulation), send, re-enable.
  p.SetCommDisabled(false, true);
  Bytes msg = PatternBytes(20000);
  std::size_t sent = 0;
  while (sent < msg.size()) {
    SysResult r = p.a->Send(ByteSpan(msg.data() + sent, msg.size() - sent));
    if (r <= 0) break;
    sent += static_cast<std::size_t>(r);
  }
  p.sim.RunFor(100 * kMillisecond);
  EXPECT_EQ(p.b->ReadableBytes(), 0u);
  p.SetCommDisabled(false, false);
  Bytes received;
  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        Bytes chunk;
        while (p.b->Receive(chunk, 65536) > 0) {
          received.insert(received.end(), chunk.begin(), chunk.end());
          chunk.clear();
        }
        while (sent < msg.size()) {
          SysResult r = p.a->Send(ByteSpan(msg.data() + sent,
                                           msg.size() - sent));
          if (r <= 0) break;
          sent += static_cast<std::size_t>(r);
        }
        return received.size() >= msg.size();
      },
      p.sim.Now() + 120 * kSecond));
  EXPECT_EQ(received, msg);
  EXPECT_GT(p.a->retransmissions(), 0u);
}

TEST(Connection, RtoBacksOffExponentially) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  DurationNs base_rto = p.a->rto();
  p.SetCommDisabled(false, true);
  p.a->Send(PatternBytes(100));
  p.sim.RunFor(5 * kSecond);
  EXPECT_GT(p.a->retransmissions(), 1u);
  EXPECT_GT(p.a->rto(), base_rto);
}

TEST(Connection, GivesUpAfterMaxRetransmits) {
  TcpConfig cfg;
  cfg.max_retransmits = 3;
  TcpPair p;
  p.Connect(cfg);
  ASSERT_TRUE(p.RunUntilEstablished());
  p.SetCommDisabled(false, true);
  p.a->Send(PatternBytes(100));
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->state() == TcpState::kClosed; },
      p.sim.Now() + 600 * kSecond));
  EXPECT_EQ(p.a->pending_error(), CRUZ_ETIMEDOUT);
}

TEST(Connection, SynRetransmittedWhenLost) {
  TcpPair p;
  // Drop everything initially; the SYN must be retried.
  p.SetCommDisabled(false, true);
  p.Connect();
  p.sim.RunFor(1500 * kMillisecond);
  p.SetCommDisabled(false, false);
  ASSERT_TRUE(p.RunUntilEstablished(30 * kSecond));
  EXPECT_GT(p.a->retransmissions(), 0u);
}

}  // namespace
}  // namespace cruz::tcp
