// Direct tests of the per-node network stack: ARP resolution and retry,
// netfilter hooks on both paths, loopback, broadcast, ephemeral ports,
// UDP queueing and overflow, RST generation, and the serialized UDP
// service processing model.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "os/node.h"
#include "sim/simulator.h"
#include "tcp/segment.h"

namespace cruz::os {
namespace {

struct StackPair {
  sim::Simulator sim{1};
  net::EthernetSwitch ethernet{sim, net::LinkParams{}};
  NetworkFileSystem fs;
  Node a;
  Node b;
  StackPair()
      : a(sim, ethernet, fs, "a", 1,
          NodeConfig{.ip = net::Ipv4Address::Parse("10.0.0.1"), .netmask = net::Ipv4Address::FromOctets(255, 255, 255, 0), .tcp = {}}),
        b(sim, ethernet, fs, "b", 2,
          NodeConfig{.ip = net::Ipv4Address::Parse("10.0.0.2"), .netmask = net::Ipv4Address::FromOctets(255, 255, 255, 0), .tcp = {}}) {}

  net::Ipv4Packet MakeUdp(net::Ipv4Address src, net::Ipv4Address dst,
                          std::uint16_t sport, std::uint16_t dport,
                          cruz::Bytes payload = {1, 2, 3}) {
    net::UdpDatagram d;
    d.src_port = sport;
    d.dst_port = dport;
    d.payload = std::move(payload);
    net::Ipv4Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.proto = net::IpProto::kUdp;
    pkt.payload = d.Encode();
    return pkt;
  }
};

TEST(NetStack, ArpResolvesOnFirstPacket) {
  StackPair p;
  SocketId sock = p.b.stack().CreateUdpSocket();
  p.b.stack().UdpBind(sock, {p.b.ip(), 5000});
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  EXPECT_EQ(p.a.stack().arp_requests_sent(), 0u);
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{42});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.a.stack().arp_requests_sent(), 1u);
  UdpSocketObject* rx = p.b.stack().FindUdp(sock);
  ASSERT_EQ(rx->rx.size(), 1u);
  EXPECT_EQ(rx->rx.front().second, (cruz::Bytes{42}));
  // Second packet uses the cache: no new ARP request.
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{43});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.a.stack().arp_requests_sent(), 1u);
  EXPECT_EQ(rx->rx.size(), 2u);
}

TEST(NetStack, ArpRetriesThenGivesUp) {
  StackPair p;
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  // Nobody owns 10.0.0.77: requests go unanswered.
  p.a.stack().UdpSendTo(sender, {net::Ipv4Address::Parse("10.0.0.77"), 1},
                        cruz::Bytes{1});
  p.sim.RunFor(5 * kSecond);
  EXPECT_GE(p.a.stack().arp_requests_sent(), 2u);  // initial + retry
  EXPECT_LE(p.a.stack().arp_requests_sent(), 4u);  // bounded
}

TEST(NetStack, OutputFilterDropsSilently) {
  StackPair p;
  SocketId sock = p.b.stack().CreateUdpSocket();
  p.b.stack().UdpBind(sock, {p.b.ip(), 5000});
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  net::Ipv4Address blocked = p.b.ip();
  std::uint64_t rule = p.a.stack().AddFilter(
      [blocked](const net::Ipv4Packet& pkt) { return pkt.dst == blocked; });
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{1});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(p.b.stack().FindUdp(sock)->rx.empty());
  EXPECT_EQ(p.a.stack().filtered_packets(), 1u);
  p.a.stack().RemoveFilter(rule);
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{2});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.b.stack().FindUdp(sock)->rx.size(), 1u);
}

TEST(NetStack, InputFilterDropsBeforeDemux) {
  StackPair p;
  SocketId sock = p.b.stack().CreateUdpSocket();
  p.b.stack().UdpBind(sock, {p.b.ip(), 5000});
  net::Ipv4Address blocked = p.a.ip();
  p.b.stack().AddFilter(
      [blocked](const net::Ipv4Packet& pkt) { return pkt.src == blocked; });
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{1});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(p.b.stack().FindUdp(sock)->rx.empty());
  EXPECT_GE(p.b.stack().filtered_packets(), 1u);
}

TEST(NetStack, LoopbackDeliversLocally) {
  StackPair p;
  SocketId rx = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(rx, {p.a.ip(), 5000});
  SocketId tx = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(tx, {p.a.ip(), 6000});
  std::uint64_t wire_before = p.a.nic().tx_frames();
  p.a.stack().UdpSendTo(tx, {p.a.ip(), 5000}, cruz::Bytes{9});
  p.sim.RunFor(kMillisecond);
  EXPECT_EQ(p.a.stack().FindUdp(rx)->rx.size(), 1u);
  EXPECT_EQ(p.a.nic().tx_frames(), wire_before);  // never hit the wire
}

TEST(NetStack, UdpQueueOverflowDropsExcess) {
  StackPair p;
  SocketId sock = p.b.stack().CreateUdpSocket();
  p.b.stack().UdpBind(sock, {p.b.ip(), 5000});
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  for (int i = 0; i < 300; ++i) {
    p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{1});
  }
  p.sim.RunFor(kSecond);
  EXPECT_EQ(p.b.stack().FindUdp(sock)->rx.size(),
            UdpSocketObject::kMaxQueue);
}

TEST(NetStack, UdpOversizedDatagramRejected) {
  StackPair p;
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  cruz::Bytes big(2000, 0);
  EXPECT_EQ(p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, big),
            SysErr(CRUZ_EMSGSIZE));
}

TEST(NetStack, EphemeralPortsUnique) {
  StackPair p;
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 100; ++i) {
    std::uint16_t port = p.a.stack().AllocateEphemeralPort(p.a.ip());
    EXPECT_GE(port, 32768);
    // Actually bind it so the next allocation must avoid it.
    SocketId s = p.a.stack().CreateUdpSocket();
    p.a.stack().UdpBind(s, {p.a.ip(), port});
    EXPECT_TRUE(ports.insert(port).second) << "duplicate port " << port;
  }
}

TEST(NetStack, BindConflictsRejected) {
  StackPair p;
  SocketId s1 = p.a.stack().CreateUdpSocket();
  EXPECT_EQ(p.a.stack().UdpBind(s1, {p.a.ip(), 7000}), 0);
  SocketId s2 = p.a.stack().CreateUdpSocket();
  EXPECT_EQ(p.a.stack().UdpBind(s2, {p.a.ip(), 7000}),
            SysErr(CRUZ_EADDRINUSE));
  // TCP listener conflicts likewise.
  SocketId t1 = p.a.stack().CreateTcpSocket();
  EXPECT_EQ(p.a.stack().TcpBind(t1, {p.a.ip(), 7001}), 0);
  EXPECT_EQ(p.a.stack().TcpListen(t1, 4), 0);
  SocketId t2 = p.a.stack().CreateTcpSocket();
  EXPECT_EQ(p.a.stack().TcpBind(t2, {p.a.ip(), 7001}),
            SysErr(CRUZ_EADDRINUSE));
  // Binding a foreign address is refused.
  SocketId t3 = p.a.stack().CreateTcpSocket();
  EXPECT_EQ(p.a.stack().TcpBind(t3, {p.b.ip(), 7002}),
            SysErr(CRUZ_EADDRNOTAVAIL));
}

TEST(NetStack, SynToClosedPortGetsRst) {
  StackPair p;
  // Hand-craft a SYN from a to b's port 9 (nothing listening).
  tcp::TcpSegment syn;
  syn.src_port = 1234;
  syn.dst_port = 9;
  syn.seq = 1000;
  syn.syn = true;
  syn.window = 1000;
  net::Ipv4Packet pkt;
  pkt.src = p.a.ip();
  pkt.dst = p.b.ip();
  pkt.proto = net::IpProto::kTcp;
  pkt.payload = syn.Encode();
  bool got_rst = false;
  // Observe the RST coming back on the wire.
  p.ethernet.set_observer([&](std::size_t, cruz::ByteSpan wire) {
    try {
      auto frame = net::EthernetFrame::Decode(wire);
      if (frame.ether_type != net::EtherType::kIpv4) return;
      auto ip = net::Ipv4Packet::Decode(frame.payload);
      if (ip.proto != net::IpProto::kTcp) return;
      auto seg = tcp::TcpSegment::Decode(ip.payload);
      if (seg.rst && ip.src == p.b.ip()) {
        got_rst = true;
        EXPECT_EQ(seg.ack, 1001u);  // SYN occupies one sequence number
      }
    } catch (const cruz::CodecError&) {
    }
  });
  p.a.stack().SendIpv4(pkt);
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(got_rst);
}

TEST(NetStack, GratuitousArpUpdatesPeers) {
  StackPair p;
  // Prime a's cache with b's real MAC via normal traffic.
  SocketId sock = p.b.stack().CreateUdpSocket();
  p.b.stack().UdpBind(sock, {p.b.ip(), 5000});
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  p.a.stack().UdpSendTo(sender, {p.b.ip(), 5000}, cruz::Bytes{1});
  p.sim.RunFor(10 * kMillisecond);
  // Announce a different MAC for some address from b.
  net::MacAddress new_mac = net::MacAddress::FromId(0xAB);
  net::Ipv4Address moved = net::Ipv4Address::Parse("10.0.0.50");
  p.b.stack().AnnounceAddress(moved, new_mac);
  p.sim.RunFor(10 * kMillisecond);
  // a can now send to the moved address without ARP resolution: the
  // gratuitous announcement populated its cache.
  std::uint64_t arps = p.a.stack().arp_requests_sent();
  p.a.stack().UdpSendTo(sender, {moved, 5000}, cruz::Bytes{2});
  p.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(p.a.stack().arp_requests_sent(), arps);
}

TEST(NetStack, UdpServiceProcessingSerializes) {
  StackPair p;
  p.b.stack().set_udp_service_processing_cost(100 * kMicrosecond);
  std::vector<TimeNs> deliveries;
  p.b.stack().RegisterUdpService(
      9000, [&](net::Endpoint, const cruz::Bytes&) {
        deliveries.push_back(p.sim.Now());
      });
  SocketId sender = p.a.stack().CreateUdpSocket();
  p.a.stack().UdpBind(sender, {p.a.ip(), 6000});
  // Fire 4 datagrams back-to-back: they must drain 100 us apart.
  for (int i = 0; i < 4; ++i) {
    p.a.stack().UdpSendTo(sender, {p.b.ip(), 9000}, cruz::Bytes{1});
  }
  p.sim.RunFor(10 * kMillisecond);
  ASSERT_EQ(deliveries.size(), 4u);
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    EXPECT_GE(deliveries[i] - deliveries[i - 1], 100 * kMicrosecond);
  }
  p.b.stack().UnregisterUdpService(9000);
}

TEST(NetStack, RemoveInterfaceStopsOwnership) {
  StackPair p;
  net::Ipv4Address vip = net::Ipv4Address::Parse("10.0.0.80");
  p.a.stack().AddInterface("vif1", net::MacAddress::FromId(0x80), vip,
                           net::Ipv4Address::FromOctets(255, 255, 255, 0),
                           true);
  EXPECT_TRUE(p.a.stack().OwnsIp(vip));
  EXPECT_NE(p.a.stack().FindInterfaceByName("vif1"), nullptr);
  p.a.stack().RemoveInterface("vif1");
  EXPECT_FALSE(p.a.stack().OwnsIp(vip));
  EXPECT_EQ(p.a.stack().FindInterfaceByName("vif1"), nullptr);
}

TEST(NetStack, PurgeSocketsRemovesDemuxEntries) {
  StackPair p;
  net::Ipv4Address vip = net::Ipv4Address::Parse("10.0.0.80");
  p.a.stack().AddInterface("vif1", net::MacAddress::FromId(0x80), vip,
                           net::Ipv4Address::FromOctets(255, 255, 255, 0),
                           true);
  SocketId listener = p.a.stack().CreateTcpSocket();
  ASSERT_EQ(p.a.stack().TcpBind(listener, {vip, 9000}), 0);
  ASSERT_EQ(p.a.stack().TcpListen(listener, 4), 0);
  SocketId udp = p.a.stack().CreateUdpSocket();
  ASSERT_EQ(p.a.stack().UdpBind(udp, {vip, 9001}), 0);
  p.a.stack().PurgeSocketsForIp(vip);
  EXPECT_EQ(p.a.stack().FindTcp(listener), nullptr);
  EXPECT_EQ(p.a.stack().FindUdp(udp), nullptr);
  // The port is free again.
  SocketId again = p.a.stack().CreateTcpSocket();
  EXPECT_EQ(p.a.stack().TcpBind(again, {vip, 9000}), 0);
}

}  // namespace
}  // namespace cruz::os
