// Tests for the single-node checkpoint-restart engine: image codec,
// non-destructive capture, local restore, cross-node migration with live
// TCP connections to external (non-Zap) peers, pipes, and SysV IPC.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "ckpt/engine.h"
#include "ckpt/image.h"
#include "cruz/cluster.h"

namespace cruz::ckpt {
namespace {

using coord::Coordinator;

// Program pair connected by a pipe inside one pod: the writer pushes an
// incrementing byte sequence, the reader verifies it. Used to prove pipe
// contents and both processes survive checkpoint-restart.
class PipeWriterProgram : public os::Program {
 public:
  void Step(os::ProcessCtx& ctx) override {
    // args: u32 write fd is communicated via spawn arrangement — here the
    // harness pre-installs fds, so args carry the fd number and total.
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    os::Fd fd = static_cast<os::Fd>(r.GetU32());
    std::uint64_t total = r.GetU64();
    std::uint64_t written = ctx.Mem().ReadU64(apps::kStatusAddr);
    if (written >= total) {
      ctx.Close(fd);
      ctx.ExitProcess(0);
      return;
    }
    cruz::Bytes chunk(std::min<std::uint64_t>(512, total - written));
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = apps::PatternByte(written + i);
    }
    SysResult n = ctx.Write(fd, chunk);
    if (SysErrno(n) == CRUZ_EAGAIN) {
      ctx.BlockOnWritable(fd);
      return;
    }
    if (n < 0) {
      ctx.ExitProcess(3);
      return;
    }
    ctx.Mem().WriteU64(apps::kStatusAddr,
                       written + static_cast<std::uint64_t>(n));
    ctx.ChargeCpu(20 * kMicrosecond);  // slow producer
  }
};

class PipeReaderProgram : public os::Program {
 public:
  void Step(os::ProcessCtx& ctx) override {
    cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
    cruz::ByteReader r(args);
    os::Fd fd = static_cast<os::Fd>(r.GetU32());
    cruz::Bytes buf;
    SysResult n = ctx.Read(fd, buf, 4096);
    if (SysErrno(n) == CRUZ_EAGAIN) {
      ctx.BlockOnReadable(fd);
      return;
    }
    if (n == 0) {
      ctx.ExitProcess(0);  // EOF: writer finished
      return;
    }
    if (n < 0) {
      ctx.ExitProcess(3);
      return;
    }
    std::uint64_t seen = ctx.Mem().ReadU64(apps::kStatusAddr);
    std::uint64_t bad = ctx.Mem().ReadU64(apps::kStatusAddr + 8);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (buf[i] != apps::PatternByte(seen + i)) ++bad;
    }
    ctx.Mem().WriteU64(apps::kStatusAddr,
                       seen + static_cast<std::uint64_t>(n));
    ctx.Mem().WriteU64(apps::kStatusAddr + 8, bad);
  }
};

// Program using SysV shm + a semaphore: increments a u64 in shared memory
// under the semaphore forever.
class ShmCounterProgram : public os::Program {
 public:
  void Step(os::ProcessCtx& ctx) override {
    enum : std::uint64_t { kInit, kLoop };
    switch (ctx.Pc()) {
      case kInit: {
        SysResult shm = ctx.ShmGet(7, 4096);
        SysResult sem = ctx.SemGet(8, 1);
        if (!SysOk(shm) || !SysOk(sem)) {
          ctx.ExitProcess(1);
          return;
        }
        ctx.ShmAt(static_cast<os::ShmId>(shm), 0x700000);
        ctx.Reg(3) = static_cast<std::uint64_t>(shm);
        ctx.Reg(4) = static_cast<std::uint64_t>(sem);
        ctx.Pc() = kLoop;
        break;
      }
      case kLoop: {
        os::SemId sem = static_cast<os::SemId>(ctx.Reg(4));
        SysResult r = ctx.SemOp(sem, -1);
        if (SysErrno(r) == CRUZ_EAGAIN) {
          ctx.BlockOnSem(sem);
          return;
        }
        os::ShmId shm = static_cast<os::ShmId>(ctx.Reg(3));
        std::uint64_t v = static_cast<std::uint64_t>(ctx.ShmReadU64(shm, 0));
        ctx.ShmWriteU64(shm, 0, v + 1);
        ctx.SemOp(sem, 1);
        ctx.ChargeCpu(10 * kMicrosecond);
        break;
      }
    }
  }
};

bool g_registered = [] {
  auto& reg = os::ProgramRegistry::Instance();
  reg.Register("test.pipe_writer",
               [] { return std::make_unique<PipeWriterProgram>(); });
  reg.Register("test.pipe_reader",
               [] { return std::make_unique<PipeReaderProgram>(); });
  reg.Register("test.shm_counter",
               [] { return std::make_unique<ShmCounterProgram>(); });
  return true;
}();

// --- image codec -------------------------------------------------------------

TEST(Image, SerializeDeserializeRoundTrip) {
  PodCheckpoint ck;
  ck.pod_id = 1001;
  ck.pod_name = "job";
  ck.ip = net::Ipv4Address::Parse("10.0.0.100");
  ck.vif_mac = net::MacAddress::FromId(0x200001);
  ck.fake_mac = net::MacAddress::FromId(0xFA0001);
  ck.next_vpid = 5;
  ck.shm.push_back(ShmRecord{1, 7, cruz::Bytes(4096, 0xAB)});
  ck.sems.push_back(SemRecord{1, 8, 1});
  ck.pipes.push_back(PipeRecord{3, {1, 2, 3}});
  DescRecord d;
  d.ref = 1;
  d.kind = os::FileDescription::Kind::kPipeRead;
  d.pipe_id = 3;
  ck.descs.push_back(d);
  ConnRecord conn;
  conn.socket_ref = 10;
  conn.conn.tuple.local = {ck.ip, 9000};
  conn.conn.tuple.remote = {net::Ipv4Address::Parse("10.0.0.2"), 4000};
  conn.conn.state = tcp::TcpState::kEstablished;
  conn.conn.send_packets.push_back(cruz::Bytes(100, 1));
  conn.conn.recv_pending = cruz::Bytes(50, 2);
  ck.conns.push_back(conn);
  ck.listeners.push_back(ListenerRecord{11, 9000, 8, {10}});
  UdpRecord u;
  u.socket_ref = 12;
  u.port = 5353;
  u.rx.emplace_back(net::Endpoint{net::Ipv4Address::Parse("10.0.0.3"), 99},
                    cruz::Bytes{9, 9});
  ck.udp.push_back(u);
  ProcessRecord p;
  p.vpid = 1;
  p.program = "cruz.counter";
  p.threads.push_back(ThreadRecord{0, {}});
  p.pages.push_back(PageRecord{16, cruz::Bytes(os::kPageSize, 0x11)});
  p.fds.push_back(FdRecord{3, 1});
  p.shm_attachments.push_back(ShmAttachRecord{7, 0x700000});
  ck.processes.push_back(p);

  cruz::Bytes image = ck.Serialize();
  PodCheckpoint d2 = PodCheckpoint::Deserialize(image);
  EXPECT_EQ(d2.pod_id, ck.pod_id);
  EXPECT_EQ(d2.pod_name, ck.pod_name);
  EXPECT_EQ(d2.ip, ck.ip);
  EXPECT_EQ(d2.vif_mac, ck.vif_mac);
  EXPECT_EQ(d2.fake_mac, ck.fake_mac);
  ASSERT_EQ(d2.shm.size(), 1u);
  EXPECT_EQ(d2.shm[0].data, ck.shm[0].data);
  ASSERT_EQ(d2.conns.size(), 1u);
  EXPECT_EQ(d2.conns[0].conn.send_packets[0], conn.conn.send_packets[0]);
  ASSERT_EQ(d2.listeners.size(), 1u);
  EXPECT_EQ(d2.listeners[0].accept_queue, ck.listeners[0].accept_queue);
  ASSERT_EQ(d2.processes.size(), 1u);
  EXPECT_EQ(d2.processes[0].pages[0].content, p.pages[0].content);
  EXPECT_GT(d2.StateBytes(), 4096u);
}

TEST(Image, CorruptionDetected) {
  PodCheckpoint ck;
  ck.pod_name = "x";
  cruz::Bytes image = ck.Serialize();
  cruz::Bytes bad = image;
  bad[20] ^= 0x1;
  EXPECT_THROW(PodCheckpoint::Deserialize(bad), cruz::CodecError);
  cruz::Bytes not_an_image(64, 0);
  EXPECT_THROW(PodCheckpoint::Deserialize(not_an_image), cruz::CodecError);
  cruz::Bytes truncated(image.begin(), image.begin() + 10);
  EXPECT_THROW(PodCheckpoint::Deserialize(truncated), cruz::CodecError);
}

// --- engine: local checkpoint/restore --------------------------------------------

TEST(Engine, CaptureIsNonDestructive) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  CaptureStats stats;
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id, &stats);
  EXPECT_EQ(stats.processes, 1u);
  EXPECT_GT(stats.state_bytes, 0u);
  // Pod is stopped; resume and verify it keeps counting.
  os::Pid real = c.pods(0).ToRealPid(id, 1);
  std::uint64_t frozen =
      apps::ReadCounter(*c.node(0).os().FindProcess(real));
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_EQ(apps::ReadCounter(*c.node(0).os().FindProcess(real)), frozen);
  CheckpointEngine::ResumePod(c.pods(0), id);
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*c.node(0).os().FindProcess(real)), frozen);
}

TEST(Engine, LocalRestoreContinuesExactly) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(2000));
  c.sim().RunFor(5 * kMillisecond);  // ~500 iterations in
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  std::uint64_t at_capture = 0;
  {
    os::Pid real = c.pods(0).ToRealPid(id, 1);
    at_capture = apps::ReadCounter(*c.node(0).os().FindProcess(real));
  }
  ASSERT_GT(at_capture, 100u);
  ASSERT_LT(at_capture, 2000u);
  c.pods(0).DestroyPod(id);

  // Round-trip through the serialized image, as the agent does.
  PodCheckpoint loaded = PodCheckpoint::Deserialize(ck.Serialize());
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), loaded);
  EXPECT_EQ(restored, id);
  os::Pid real = c.pods(0).ToRealPid(restored, 1);
  ASSERT_NE(real, os::kNoPid);
  // The counter resumes from exactly the captured value.
  EXPECT_EQ(apps::ReadCounter(*c.node(0).os().FindProcess(real)),
            at_capture);
  CheckpointEngine::ResumePod(c.pods(0), restored);
  bool exited = false;
  c.node(0).os().set_process_exit_hook([&](os::Pid p, int code) {
    if (p == real) {
      exited = true;
      EXPECT_EQ(code, 0);
      EXPECT_EQ(apps::ReadCounter(*c.node(0).os().FindProcess(p)), 2000u);
    }
  });
  c.sim().RunFor(60 * kSecond);
  EXPECT_TRUE(exited);
}

TEST(Engine, RestoredVirtualPidsSurviveRealPidCollision) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(kMillisecond);
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  os::Pid old_real = c.pods(0).ToRealPid(id, 1);
  c.pods(0).DestroyPod(id);
  // Occupy the old real pid's slot with unrelated processes.
  for (int i = 0; i < 5; ++i) {
    c.node(0).os().Spawn("cruz.counter", apps::CounterArgs(1u << 30));
  }
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), ck);
  os::Pid new_real = c.pods(0).ToRealPid(restored, 1);
  ASSERT_NE(new_real, os::kNoPid);
  EXPECT_NE(new_real, old_real);  // kernel pid changed...
  os::Process* proc = c.node(0).os().FindProcess(new_real);
  // ...but the pod-visible pid did not.
  EXPECT_EQ(c.node(0).os().SysGetpid(*proc), 1);
}

TEST(Engine, PipeContentsSurviveRestore) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "pipes");
  // Build the pair manually: spawn both, then wire a pipe between them.
  os::Os& os = c.node(0).os();
  os::Pid writer_v = c.pods(0).SpawnInPod(id, "test.pipe_writer", {});
  os::Pid reader_v = c.pods(0).SpawnInPod(id, "test.pipe_reader", {});
  os::Process* writer = os.FindProcess(c.pods(0).ToRealPid(id, writer_v));
  os::Process* reader = os.FindProcess(c.pods(0).ToRealPid(id, reader_v));
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(reader, nullptr);
  os::Fd rd = -1, wr = -1;
  ASSERT_EQ(os.SysPipe(*writer, &rd, &wr), 0);
  // Move the read end's description into the reader's fd table.
  auto rd_desc = writer->LookupFd(rd);
  writer->RemoveFd(rd);
  reader->InstallFd(100, rd_desc);
  // Write args (fd + total) into each process's memory.
  const std::uint64_t total = 100000;
  {
    cruz::ByteWriter w;
    w.PutU32(static_cast<std::uint32_t>(wr));
    w.PutU64(total);
    writer->memory().WriteBytes(writer->MainThread().regs.r[1] = 0x1000,
                                w.data());
    writer->MainThread().regs.r[2] = w.size();
  }
  {
    cruz::ByteWriter w;
    w.PutU32(100);
    reader->memory().WriteBytes(reader->MainThread().regs.r[1] = 0x1000,
                                w.data());
    reader->MainThread().regs.r[2] = w.size();
  }
  // Run to mid-transfer (the writer needs ~20 us per 512-byte chunk, so
  // the whole stream takes ~4 ms; stop after a fraction of it).
  os::Pid reader_real = reader->pid();
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        os::Process* p = os.FindProcess(reader_real);
        return p != nullptr &&
               p->memory().ReadU64(apps::kStatusAddr) >= total / 4;
      },
      c.sim().Now() + 60 * kSecond));
  reader = os.FindProcess(reader_real);
  ASSERT_NE(reader, nullptr);
  std::uint64_t read_before =
      reader->memory().ReadU64(apps::kStatusAddr);
  ASSERT_GT(read_before, 0u);
  ASSERT_LT(read_before, total);

  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  c.pods(0).DestroyPod(id);
  os::PodId restored =
      CheckpointEngine::RestorePod(c.pods(0), PodCheckpoint::Deserialize(
                                                  ck.Serialize()));
  CheckpointEngine::ResumePod(c.pods(0), restored);
  os::Process* reader2 =
      os.FindProcess(c.pods(0).ToRealPid(restored, reader_v));
  ASSERT_NE(reader2, nullptr);
  os::Pid reader2_pid = reader2->pid();
  bool reader_exited = false;
  std::uint64_t final_read = 0, final_bad = 0;
  os.set_process_exit_hook([&](os::Pid p, int code) {
    if (p == reader2_pid) {
      reader_exited = true;
      EXPECT_EQ(code, 0);
      os::Process* pr = os.FindProcess(p);
      final_read = pr->memory().ReadU64(apps::kStatusAddr);
      final_bad = pr->memory().ReadU64(apps::kStatusAddr + 8);
    }
  });
  c.sim().RunFor(60 * kSecond);
  EXPECT_TRUE(reader_exited);
  EXPECT_EQ(final_read, total);  // every byte exactly once, in order
  EXPECT_EQ(final_bad, 0u);
}

TEST(Engine, ShmAndSemaphoreSurviveRestore) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "shm");
  c.pods(0).SpawnInPod(id, "test.shm_counter", {});
  c.sim().RunFor(20 * kMillisecond);
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  ASSERT_EQ(ck.shm.size(), 1u);
  ASSERT_EQ(ck.sems.size(), 1u);
  EXPECT_EQ(ck.sems[0].value, 1);
  // Current shared counter value is embedded in the shm data.
  std::uint64_t counted = 0;
  for (int i = 7; i >= 0; --i) {
    counted = (counted << 8) | ck.shm[0].data[static_cast<std::size_t>(i)];
  }
  ASSERT_GT(counted, 0u);
  c.pods(0).DestroyPod(id);

  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), ck);
  CheckpointEngine::ResumePod(c.pods(0), restored);
  c.sim().RunFor(20 * kMillisecond);
  // The counter continued from the captured value in the restored shm.
  os::Pid real = c.pods(0).ToRealPid(restored, 1);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  ASSERT_FALSE(proc->shm_attachments().empty());
  os::ShmSegment* seg =
      c.node(0).os().sysv().FindShm(proc->shm_attachments()[0].shm_id);
  ASSERT_NE(seg, nullptr);
  std::uint64_t now = 0;
  for (int i = 7; i >= 0; --i) {
    now = (now << 8) | seg->data[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(now, counted);
}

// --- migration with a live external client ---------------------------------------

TEST(Engine, MigrationPreservesConnectionToExternalClient) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  // Echo server inside a pod on node1.
  os::PodId id = c.CreatePod(0, "srv");
  net::Ipv4Address pod_ip = c.pods(0).Find(id)->ip;
  c.pods(0).SpawnInPod(id, "cruz.echo_server", apps::EchoServerArgs(9000));
  c.sim().RunFor(10 * kMillisecond);
  // External client on node3 — a plain process, NOT under Zap control —
  // sends many messages with verification.
  os::Pid client = c.node(2).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(pod_ip, 9000, 60, 256, 2 * kMillisecond));
  os::Process* client_proc = c.node(2).os().FindProcess(client);
  ASSERT_NE(client_proc, nullptr);
  // Let the exchange get going.
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        return apps::ReadEchoClientStatus(*client_proc).messages_done >= 10;
      },
      c.sim().Now() + 30 * kSecond));

  // Checkpoint on node1, destroy, restore on node2 (migration).
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  c.pods(0).DestroyPod(id);
  c.sim().RunFor(50 * kMillisecond);  // downtime; client retransmits
  os::PodId restored = CheckpointEngine::RestorePod(
      c.pods(1), PodCheckpoint::Deserialize(ck.Serialize()));
  CheckpointEngine::ResumePod(c.pods(1), restored);
  EXPECT_TRUE(c.node(1).stack().OwnsIp(pod_ip));

  // The client finishes all 60 messages against the SAME address, over
  // the SAME connection, with zero corruption.
  int client_code = -1;
  apps::EchoClientStatus final_status;
  c.node(2).os().set_process_exit_hook([&](os::Pid p, int code) {
    if (p == client) {
      client_code = code;
      final_status =
          apps::ReadEchoClientStatus(*c.node(2).os().FindProcess(p));
    }
  });
  c.sim().RunFor(120 * kSecond);
  EXPECT_EQ(client_code, 0);
  EXPECT_EQ(final_status.messages_done, 60u);
  EXPECT_EQ(final_status.mismatches, 0u);
}

TEST(Engine, ListenerAcceptQueueSurvivesRestore) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "srv");
  net::Ipv4Address pod_ip = c.pods(0).Find(id)->ip;
  c.pods(0).SpawnInPod(id, "cruz.echo_server", apps::EchoServerArgs(9000));
  c.sim().RunFor(10 * kMillisecond);
  // Stop the pod BEFORE clients connect: connections complete in the
  // kernel (SYN handled by the stack) and sit in the accept queue.
  CheckpointEngine::StopPod(c.pods(0), id);
  os::Pid c1 = c.node(1).os().Spawn(
      "cruz.echo_client", apps::EchoClientArgs(pod_ip, 9000, 1, 32, 0));
  c.sim().RunFor(100 * kMillisecond);
  PodCheckpoint ck = CheckpointEngine::CapturePod(c.pods(0), id);
  EXPECT_EQ(ck.listeners.size(), 1u);
  // There are two connections total across listener queue + established.
  c.pods(0).DestroyPod(id);
  os::PodId restored = CheckpointEngine::RestorePod(c.pods(0), ck);
  CheckpointEngine::ResumePod(c.pods(0), restored);
  int code = -1;
  c.node(1).os().set_process_exit_hook(
      [&](os::Pid p, int exit_code) { if (p == c1) code = exit_code; });
  c.sim().RunFor(60 * kSecond);
  EXPECT_EQ(code, 0);  // the queued connection was accepted after restore
}

}  // namespace
}  // namespace cruz::ckpt
