// Deterministic fault injection against the coordination protocol: the
// FaultPlan's seeded fates must reproduce bit-for-bit, and every injected
// failure (disk I/O error, agent crash, coordinator crash, node crash,
// stale-epoch replay, unbounded loss) must leave the cluster in a clean
// state — pods running, no leaked partial images, fencing intact.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "check/explorer.h"
#include "check/scenario.h"
#include "ckpt/generation.h"
#include "ckpt/live_migrate.h"
#include "coord/agent.h"
#include "cruz/cluster.h"
#include "fault/fault.h"
#include "migrate_harness.h"
#include "obs/trace_query.h"

namespace cruz {
namespace {

constexpr std::uint8_t kCheckpointByte =
    static_cast<std::uint8_t>(coord::MsgType::kCheckpoint);
constexpr std::uint8_t kContinueByte =
    static_cast<std::uint8_t>(coord::MsgType::kContinue);

os::PodId SpawnCounterPod(Cluster& c, std::size_t node,
                          const std::string& name) {
  os::PodId id = c.CreatePod(node, name);
  c.pods(node).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  return id;
}

bool PodProcessLive(Cluster& c, std::size_t node, os::PodId pod) {
  os::Pid real = c.pods(node).ToRealPid(pod, 1);
  if (real == os::kNoPid) return false;
  os::Process* proc = c.node(node).os().FindProcess(real);
  return proc != nullptr && proc->state() == os::ProcessState::kLive;
}

// Identically seeded runs must produce identical fault-event logs and
// identical protocol outcomes — this is what makes a chaos failure
// replayable from its seed.
TEST(Fault, EventLogIsDeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    config.num_nodes = 2;
    Cluster c(config);
    fault::FaultPlan plan(seed * 13 + 1);
    plan.ArmMessageLoss(0.3);
    plan.ArmMessageDuplication(0.3);
    plan.ArmMessageDelay(0.3, 20 * kMillisecond);
    c.ArmFaults(plan);

    os::PodId a = SpawnCounterPod(c, 0, "a");
    os::PodId b = SpawnCounterPod(c, 1, "b");
    c.sim().RunFor(10 * kMillisecond);
    coord::Coordinator::Options options;
    options.retransmit_interval = 200 * kMillisecond;
    options.timeout = 60 * kSecond;
    auto stats =
        c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)}, options);
    return plan.EventLog() + "|" + (stats.success ? "ok" : "fail") + "|" +
           std::to_string(stats.retransmits);
  };

  std::string first = run(42);
  std::string second = run(42);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('|'), std::string::npos);
  // With 30% fault rates on every control message, at least one fault
  // must have fired (the log is non-empty).
  EXPECT_GT(first.find('|'), 0u);
  // A different seed draws different fates.
  EXPECT_NE(run(43), first);
}

TEST(Fault, DiskWriteFailureAbortsFastWithoutLeakingImages) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(7);
  plan.ArmDiskWriteFailure("node2");
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  TimeNs before = c.sim().Now();
  auto result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)});
  EXPECT_FALSE(result.stats.success);
  EXPECT_NE(result.stats.abort_reason.find("failed"), std::string::npos);
  EXPECT_EQ(result.generation, 0u);      // aborted gen was discarded
  EXPECT_EQ(result.latest_committed, 0u);
  // The <failed> report aborts the op orders of magnitude faster than the
  // 120 s operation timeout.
  EXPECT_LT(c.sim().Now() - before, 10 * kSecond);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kDiskWriteFail), 1u);

  // No partial image of either member survives anywhere under the
  // generation root, and both pods are running again.
  EXPECT_TRUE(c.fs().List("/ckpt/gens/gen_").empty());
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 0, a));
  EXPECT_TRUE(PodProcessLive(c, 1, b));

  // The failure was one-shot: the next attempt commits a generation.
  auto retry = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)});
  EXPECT_TRUE(retry.stats.success);
  EXPECT_EQ(retry.latest_committed, retry.generation);
}

// A coordinator crash mid-op: the restarted incarnation replays the
// intent journal, aborts the in-flight op, garbage-collects its partial
// images, and continues with a fenced (higher) epoch.
TEST(Fault, CoordinatorRestartRecoversFromIntentJournal) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(11);
  // Stall the op at step 3: the second agent's process dies on <continue>,
  // after both images are already on the shared FS.
  plan.ArmAgentCrash("node2", kContinueByte);
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.image_prefix = "/ckpt/jrec";
  options.retransmit_interval = 500 * kMillisecond;
  bool finished = false;
  c.coordinator().Checkpoint({c.MemberFor(0, a), c.MemberFor(1, b)},
                             options, [&](const auto&) { finished = true; });
  c.sim().RunFor(3 * kSecond);
  ASSERT_FALSE(finished);  // stalled waiting for the crashed agent
  ASSERT_EQ(c.fs().List("/ckpt/jrec/").size(), 2u);

  // The coordinator process "crashes" and comes back.
  c.RestartCoordinator();
  const auto& recovery = c.coordinator().recovery();
  EXPECT_TRUE(recovery.had_incomplete);
  EXPECT_FALSE(recovery.was_restart);
  EXPECT_EQ(recovery.epoch, 1u);
  EXPECT_EQ(recovery.images_removed, 2u);
  EXPECT_TRUE(c.fs().List("/ckpt/jrec/").empty());
  EXPECT_EQ(c.coordinator().epoch(), 1u);  // resumes the fencing sequence

  // Recovery also sent <abort>: the healthy agent resumes its pod.
  c.sim().RunFor(100 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 0, a));

  // Restart the dead agent process and verify the cluster is whole: a
  // fresh op succeeds under the next epoch.
  c.agent(1).Reset();
  c.sim().RunFor(10 * kMillisecond);
  auto stats = c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)});
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.epoch, 2u);
  EXPECT_EQ(stats.op_id, 2u);
}

// Abort-path GC across tiers: when a tiered generation aborts, the
// orphan partner replicas and any half-flushed netfs images are reaped
// along with the writer's local copies — zero bytes survive on any tier,
// and no background flush keeps resurrecting them.
TEST(Fault, AbortedTieredGenerationLeavesZeroOrphanBytesOnAllTiers) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  fault::FaultPlan plan(21);
  // The second agent's image write fails after the first agent already
  // committed its image to local + partner and queued the netfs flush.
  plan.ArmDiskWriteFailure("node2");
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.tiered = true;
  auto result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_FALSE(result.stats.success);
  EXPECT_EQ(result.generation, 0u);
  c.sim().RunFor(2 * kSecond);  // any surviving flush would land by now

  const std::string prefix =
      std::string(ckpt::GenerationStore::kDefaultRoot) + "/gen_";
  EXPECT_EQ(c.tiered().BytesUnderPrefix(prefix), 0u);
  EXPECT_TRUE(c.fs().List(prefix).empty());
  EXPECT_EQ(c.tiered().PendingFlushCount(), 0u);

  // The cluster is whole: pods resumed, and the next tiered attempt
  // commits cleanly.
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 0, a));
  EXPECT_TRUE(PodProcessLive(c, 1, b));
  auto retry = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_TRUE(retry.stats.success);
  EXPECT_EQ(retry.latest_committed, retry.generation);
}

// A replayed request from a dead (lower-epoch) coordinator incarnation
// must be silently dropped by the fencing check, even when its op id is
// novel.
TEST(Fault, EpochFencingDropsStaleCoordinatorRequests) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = SpawnCounterPod(c, 0, "job");
  c.sim().RunFor(10 * kMillisecond);
  auto stats = c.RunCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(stats.success);
  ASSERT_EQ(stats.epoch, 1u);
  EXPECT_EQ(c.agent(0).checkpoints_served(), 1u);

  coord::CoordMessage stale;
  stale.type = coord::MsgType::kCheckpoint;
  stale.op_id = 999;  // novel op — only the epoch marks it stale
  stale.epoch = 0;
  stale.pod_id = id;
  stale.image_path = "/ckpt/stale.img";
  net::UdpDatagram dgram;
  dgram.src_port = coord::kCoordinatorPort;
  dgram.dst_port = coord::kAgentPort;
  dgram.payload = stale.Encode();
  net::Ipv4Packet pkt;
  pkt.src = c.coordinator_node().ip();
  pkt.dst = c.node(0).ip();
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  c.coordinator_node().stack().SendIpv4(pkt);
  c.sim().RunFor(kSecond);

  EXPECT_EQ(c.agent(0).checkpoints_served(), 1u);
  EXPECT_FALSE(c.fs().Exists("/ckpt/stale.img"));
  EXPECT_TRUE(PodProcessLive(c, 0, id));

  // The live coordinator's next (higher-epoch) op still goes through.
  auto next = c.RunCheckpoint({c.MemberFor(0, id)});
  EXPECT_TRUE(next.success);
  EXPECT_EQ(next.epoch, 2u);
}

// With the channel fully dead, the retransmit-round cap bounds the op far
// below the 120 s operation timeout.
TEST(Fault, RetryCapAbortsUnreachableAgentsFast) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(3);
  plan.ArmMessageLoss(1.0);
  c.ArmFaults(plan);

  os::PodId id = SpawnCounterPod(c, 0, "job");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.retransmit_interval = 100 * kMillisecond;
  options.max_retransmit_rounds = 3;
  options.timeout = 60 * kSecond;
  TimeNs before = c.sim().Now();
  auto stats = c.RunCheckpoint({c.MemberFor(0, id)}, options);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.abort_reason, "retry cap");
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_GE(stats.retransmits, 3u);
  EXPECT_GE(stats.aborts, 1u);
  EXPECT_LT(c.sim().Now() - before, 5 * kSecond);
  EXPECT_GT(plan.CountEvents(fault::FaultKind::kMessageDrop), 0u);
  // The agent never saw the request; its pod kept running throughout.
  EXPECT_EQ(c.agent(0).checkpoints_served(), 0u);
  EXPECT_TRUE(PodProcessLive(c, 0, id));
}

// A whole-machine fail-stop between checkpoints, followed by a scheduled
// reboot: the work is lost with the machine, but the rebooted node can
// host the pod again, restored from the last committed generation.
TEST(Fault, NodeCrashRebootThenGenerationRestart) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = SpawnCounterPod(c, 0, "job");
  c.sim().RunFor(20 * kMillisecond);
  auto ck = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(ck.stats.success);
  ASSERT_GT(ck.generation, 0u);

  fault::FaultPlan plan(5);
  plan.ArmNodeCrash(0, c.sim().Now() + 50 * kMillisecond,
                    /*reboot_after=*/100 * kMillisecond);
  c.ArmFaults(plan);
  c.sim().RunFor(300 * kMillisecond);

  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kNodeCrash), 1u);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kNodeReboot), 1u);
  EXPECT_FALSE(c.node(0).failed());
  EXPECT_EQ(c.pods(0).Find(id), nullptr);  // pod died with the machine

  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_EQ(rs.generation, ck.generation);
  EXPECT_FALSE(rs.fell_back);

  os::Pid real = c.pods(0).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = apps::ReadCounter(*proc);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*proc), before);
}

// Silent bit corruption injected at image-write time survives the commit
// (the manifest CRC is computed over the already-corrupt bytes) but is
// caught by the deep verification pass — the image's own CRC trailer
// fails to deserialize — so restart falls back to the older generation.
TEST(Fault, SilentImageCorruptionCaughtAtRestart) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = SpawnCounterPod(c, 0, "job");
  c.sim().RunFor(20 * kMillisecond);
  auto g1 = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(g1.stats.success);

  fault::FaultPlan plan(13);
  plan.ArmImageCorruption("node1");
  c.ArmFaults(plan);
  c.sim().RunFor(20 * kMillisecond);
  auto g2 = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(g2.stats.success);  // the corruption is silent at write time
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kImageCorrupt), 1u);

  c.pods(0).DestroyPod(id);
  c.sim().RunFor(10 * kMillisecond);
  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.generation, g1.generation);
  EXPECT_EQ(rs.latest_committed, g2.generation);
  EXPECT_TRUE(PodProcessLive(c, 0, id));
}

// Duplicated and delayed control messages alone (no loss) must never
// break an op: dedupe by op id and epoch fencing absorb them. The
// invariant oracle checks the whole run — every checkpoint commits its
// generation exactly once, <continue> reaches each member exactly once,
// the protocol phases stay ordered, and no partial state leaks.
TEST(Fault, DuplicationAndDelayAreHarmless) {
  check::Scenario scenario;
  scenario.seed = 9;
  scenario.num_nodes = 2;
  scenario.workload = check::WorkloadKind::kCounters;
  scenario.workload_units = 20000;
  scenario.faults = {
      {check::FaultSpecKind::kMessageDup, 0, 500, 0},
      {check::FaultSpecKind::kMessageDelay, 0, 500, 30},
  };
  for (int round = 0; round < 3; ++round) {
    check::OpSpec ck;
    ck.kind = check::OpKind::kCheckpoint;
    ck.pre_delay = 20 * kMillisecond;
    scenario.ops.push_back(ck);
  }
  check::Explorer explorer;
  check::RunResult result = explorer.RunScenario(scenario);
  EXPECT_TRUE(result.passed) << result.summary;
  for (const check::Violation& v : result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

// Fig. 4 under hostile control channels: every message is duplicated and
// half are delayed (so <comm-disabled> arrives twice and out of order).
// The optimized variant must still send the early <continue> exactly
// once per member, open exactly one commit phase, and grant resume
// BEFORE the freeze phase closes — that early grant is the whole point
// of the optimization, and duplicate <comm-disabled> must not re-fire it.
TEST(Fault, Fig4OptimizedSurvivesDuplicatedCommDisabled) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(29);
  plan.ArmMessageDuplication(1.0);
  plan.ArmMessageDelay(0.5, 10 * kMillisecond);
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  auto stats = c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)},
                               options);
  ASSERT_TRUE(stats.success);
  EXPECT_EQ(c.agent(0).checkpoints_served(), 1u);
  EXPECT_EQ(c.agent(1).checkpoints_served(), 1u);

  obs::TraceQuery q(c.sim().tracer());
  auto count_continue = [&](const char* name) {
    std::size_t n = 0;
    for (const obs::TraceEvent* e :
         q.Select(obs::TraceQuery::Filter{}.Name(name).Op(stats.op_id))) {
      for (const auto& kv : e->attrs.args) {
        if (kv.first == "type" && kv.second == "continue") ++n;
      }
    }
    return n;
  };
  // Exactly one intentional <continue> per member: fresh sends minus
  // coordinator retransmissions (fault-layer duplicates happen below the
  // send instant and are absorbed by the agents' dedupe).
  EXPECT_EQ(count_continue("coord.msg.send") -
                count_continue("coord.retransmit"),
            2u);

  std::vector<const obs::TraceEvent*> commits = q.Select(
      obs::TraceQuery::Filter{}.Name("coord.phase.commit").Op(stats.op_id));
  ASSERT_EQ(commits.size(), 1u);
  const obs::TraceEvent* freeze = q.First(
      obs::TraceQuery::Filter{}.Name("coord.phase.freeze").Op(stats.op_id));
  ASSERT_NE(freeze, nullptr);
  // The early grant: the commit phase opens before the freeze phase has
  // closed (the Fig. 2 blocking protocol would order them the other way).
  EXPECT_LT(commits[0]->ts, freeze->end_ts());

  // Each agent resumed its pod exactly once despite the duplicates.
  EXPECT_EQ(q.Count(obs::TraceQuery::Filter{}
                        .Name("agent.continue")
                        .Op(stats.op_id)),
            2u);
}

// The agent-crash hook takes the agent down *before* it can process the
// request, so this also exercises heartbeat-based liveness detection in
// the checkpoint (not just journal-recovery) path.
TEST(Fault, AgentCrashOnRequestDetectedByHeartbeat) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(21);
  plan.ArmAgentCrash("node2", kCheckpointByte);
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.retransmit_interval = 500 * kMillisecond;
  options.heartbeat_interval = 200 * kMillisecond;
  options.max_missed_heartbeats = 2;
  options.timeout = 60 * kSecond;
  TimeNs before = c.sim().Now();
  auto stats =
      c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_FALSE(stats.success);
  EXPECT_NE(stats.abort_reason.find("unresponsive"), std::string::npos);
  EXPECT_LT(c.sim().Now() - before, 10 * kSecond);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kAgentCrash), 1u);
  EXPECT_TRUE(c.agent(1).crashed());
}

// A disk failure that hits DURING the background write-out of a forked
// (copy-on-write) checkpoint: the pod resumed at snapshot time, long
// before the write fails. The op must abort, the partial image must be
// GC'd, and the previously committed generation must remain `latest`
// and restorable.
TEST(Fault, DiskFailureDuringCowWriteOutKeepsPriorGeneration) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.node_template.disk_write_bytes_per_sec = 2 * kMiB;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  // Enough state on node2 that its write-out takes real (simulated) time.
  os::Process* bp = c.node(1).os().FindProcess(c.pods(1).ToRealPid(b, 1));
  Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 512; ++i) {
    bp->memory().InstallPage(0x1000 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.compress = true;
  auto g1 = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  ASSERT_TRUE(g1.stats.success);

  fault::FaultPlan plan(11);
  plan.ArmDiskWriteFailure("node2");
  c.ArmFaults(plan);
  auto g2 = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_FALSE(g2.stats.success);
  EXPECT_NE(g2.stats.abort_reason.find("failed"), std::string::npos);
  EXPECT_EQ(g2.generation, 0u);  // discarded, never committed
  EXPECT_EQ(g2.latest_committed, g1.generation);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kDiskWriteFail), 1u);

  // The aborted generation's partial images are gone: only generation-1
  // files (plus the SEQ counter) remain under the root.
  ckpt::GenerationStore store(c.fs());
  std::string keep = store.Prefix(g1.generation);
  for (const std::string& path : c.fs().List("/ckpt/gens/")) {
    EXPECT_TRUE(path == "/ckpt/gens/SEQ" || path.rfind(keep, 0) == 0)
        << path;
  }

  // Both pods kept running (the failed member was resumed on abort, the
  // healthy one never noticed), and generation 1 restores cleanly.
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 0, a));
  EXPECT_TRUE(PodProcessLive(c, 1, b));
  c.pods(0).DestroyPod(a);
  c.pods(1).DestroyPod(b);
  auto rs = c.RunGenerationRestart({c.MemberFor(0, a), c.MemberFor(1, b)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_FALSE(rs.fell_back);
  EXPECT_EQ(rs.generation, g1.generation);
}

// An agent process crash in the middle of the background write-out: the
// pod has already resumed and its TCP stream keeps flowing; heartbeats
// detect the dead agent, the op aborts, the partial image is GC'd, the
// prior generation stays `latest`, and the stream drains intact.
TEST(Fault, AgentCrashDuringCowWriteOutLeavesStreamClean) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.node_template.disk_write_bytes_per_sec = 2 * kMiB;
  Cluster c(config);
  os::PodId rp = c.CreatePod(1, "recv");
  net::Ipv4Address rip = c.pods(1).Find(rp)->ip;
  // Bursty consumer (64 KiB per 20 ms): the 16 MiB stream stays active
  // for several simulated seconds — far longer than the write-out.
  os::Pid rv = c.pods(1).SpawnInPod(
      rp, "cruz.stream_receiver",
      apps::StreamReceiverArgs(9100, 20 * kMillisecond, 64 * 1024));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId sp = c.CreatePod(0, "send");
  c.pods(0).SpawnInPod(sp, "cruz.stream_sender",
                       apps::StreamSenderArgs(rip, 9100, 16 * kMiB));
  auto status = [&] {
    os::Process* p =
        c.node(1).os().FindProcess(c.pods(1).ToRealPid(rp, rv));
    return p != nullptr ? apps::ReadStreamStatus(*p) : apps::StreamStatus{};
  };
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return status().bytes > 256 * 1024; },
      c.sim().Now() + 60 * kSecond));

  // Pad the receiver pod with incompressible state so even the compressed
  // write-out takes ~1 s on the slow disk.
  os::Process* rproc =
      c.node(1).os().FindProcess(c.pods(1).ToRealPid(rp, rv));
  for (std::uint64_t i = 0; i < 512; ++i) {
    Bytes page(os::kPageSize);
    for (std::size_t j = 0; j < page.size(); ++j) {
      page[j] = static_cast<std::uint8_t>(j * 7 + i * 131 + 3);
    }
    rproc->memory().InstallPage(0x1000 + i, page);
  }

  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.compress = true;
  options.retransmit_interval = 500 * kMillisecond;
  options.heartbeat_interval = 200 * kMillisecond;
  options.max_missed_heartbeats = 2;
  options.timeout = 60 * kSecond;
  auto g1 = c.RunGenerationCheckpoint(
      {c.MemberFor(0, sp), c.MemberFor(1, rp)}, options);
  ASSERT_TRUE(g1.stats.success);

  // Crash node2's agent 300 ms into the next checkpoint: far inside its
  // background write-out window (the snapshot itself takes microseconds,
  // the disk write around a second).
  fault::FaultPlan plan(13);
  plan.ArmAgentCrashAt(1, c.sim().Now() + 300 * kMillisecond);
  c.ArmFaults(plan);
  TimeNs before = c.sim().Now();
  auto g2 = c.RunGenerationCheckpoint(
      {c.MemberFor(0, sp), c.MemberFor(1, rp)}, options);
  EXPECT_FALSE(g2.stats.success);
  EXPECT_NE(g2.stats.abort_reason.find("unresponsive"), std::string::npos);
  EXPECT_LT(c.sim().Now() - before, 10 * kSecond);
  EXPECT_EQ(g2.generation, 0u);
  EXPECT_EQ(g2.latest_committed, g1.generation);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kAgentCrash), 1u);
  EXPECT_TRUE(c.agent(1).crashed());

  // The aborted generation (including the crashed agent's partial image)
  // was garbage-collected wholesale.
  ckpt::GenerationStore store(c.fs());
  std::string keep = store.Prefix(g1.generation);
  for (const std::string& path : c.fs().List("/ckpt/gens/")) {
    EXPECT_TRUE(path == "/ckpt/gens/SEQ" || path.rfind(keep, 0) == 0)
        << path;
  }

  // The receiver pod resumed before the crash; after the agent process
  // restarts, the stream drains to completion without a corrupted byte.
  c.agent(1).Reset();
  apps::StreamStatus last;
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        auto s = status();
        if (s.bytes != 0) last = s;
        return last.bytes >= 16 * kMiB;
      },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(last.mismatches, 0u);
}

// Chaos on the post-copy page channel: every page request and response
// is subject to seeded loss, duplication, and delay. The protocol must
// stall-then-recover — retransmit timers re-request lost fetches, the
// push loop re-pushes lost responses — and the recovered pod's final
// memory must still be bit-identical to the fault-free reference model.
TEST(Fault, PageChannelLossDupDelayStallsThenRecovers) {
  for (ckpt::MigrateMode mode :
       {ckpt::MigrateMode::kPostCopy, ckpt::MigrateMode::kHybrid}) {
    fault::FaultPlan plan(17);
    plan.ArmMessageLoss(0.25);
    plan.ArmMessageDuplication(0.25);
    plan.ArmMessageDelay(0.25, 1 * kMillisecond);

    ckpt::testing::ScribProfile profile = ckpt::testing::ProfileFromSeed(5);
    ckpt::LiveMigrateOptions options;
    options.hot_window = 200 * kMicrosecond;
    options.injector = &plan;
    ckpt::testing::ModeRun run =
        ckpt::testing::RunScribblerMigration(profile, mode, options);

    ASSERT_TRUE(run.migrated);
    ASSERT_TRUE(run.completed);
    // Lost requests were re-requested; the run still converged.
    EXPECT_GT(run.stats.requests_retransmitted, 0u);
    EXPECT_GT(plan.CountEvents(fault::FaultKind::kMessageDrop), 0u);
    // Nothing lost, nothing served after release, accounting balanced.
    EXPECT_EQ(run.stats.late_serves, 0u);
    EXPECT_EQ(run.stats.pages_resident_at_resume +
                  run.stats.pages_fetched_on_demand + run.stats.pages_pushed,
              run.stats.pages_total);
    // The decisive check: chaos changed timings, not contents.
    cruz::Bytes args = ckpt::testing::ScribblerArgs(
        profile.scribble_seed, profile.iterations, profile.pool_pages);
    ckpt::testing::ScribExpectation expected =
        ckpt::testing::ExpectedScribblerState(profile, args);
    EXPECT_EQ(run.checksum, expected.checksum);
    EXPECT_EQ(run.image, expected.image);
  }
}

// Source-node crash in the middle of demand paging: the target pod
// stalls cleanly (parked on its fault, no crash, no torn state), a
// checkpoint of the half-resident pod is refused cleanly, and the pod is
// restartable from the latest committed generation with zero orphan
// images left behind.
TEST(Fault, SourceCrashMidDemandPagingFailsCleanlyAndRestarts) {
  ckpt::testing::RegisterScribbler();
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "scrib");
  c.pods(0).SpawnInPod(
      id, "harness.scribbler",
      ckpt::testing::ScribblerArgs(3, std::uint64_t{1} << 40, 96));
  os::Process* scrib = c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, 1));
  cruz::Bytes page(os::kPageSize, 0x55);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    scrib->memory().InstallPage(ckpt::testing::kScribBallastPage + i, page);
  }
  c.sim().RunFor(20 * kMillisecond);

  // Committed safety net: generation G of the running pod.
  auto g = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(g.stats.success);
  ASSERT_GT(g.generation, 0u);

  // Post-copy migrate 0 -> 1; kill the source right as demand paging
  // begins (stop at +0.2 ms, hot-set transfer ~1.5 ms, so +2.5 ms is
  // moments after the resume, with nearly all of the residue missing),
  // rebooting later.
  fault::FaultPlan plan(19);
  plan.ArmNodeCrash(0, c.sim().Now() + 2500 * kMicrosecond,
                    /*reboot_after=*/50 * kMillisecond);
  c.ArmFaults(plan);
  ckpt::LiveMigrateOptions options;
  options.hot_window = 200 * kMicrosecond;
  bool done = false;
  ckpt::LiveMigrator::PostCopy(c.pods(0), c.pods(1), id, options,
                               [&](const ckpt::LiveMigrateStats&) {
                                 done = true;
                               });
  c.sim().RunFor(200 * kMillisecond);
  EXPECT_EQ(plan.CountEvents(fault::FaultKind::kNodeCrash), 1u);
  EXPECT_FALSE(done);  // the migration can never reach full residency

  // The target pod exists but is parked on a demand fetch that will
  // never be served — stalled, not crashed, not torn.
  os::Pid real = c.pods(1).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* stuck = c.node(1).os().FindProcess(real);
  ASSERT_NE(stuck, nullptr);
  EXPECT_TRUE(stuck->memory().HasMissingPages());
  std::uint64_t frozen_count = stuck->memory().ReadU64(apps::kStatusAddr);
  c.sim().RunFor(50 * kMillisecond);
  EXPECT_EQ(stuck->memory().ReadU64(apps::kStatusAddr), frozen_count);

  // A checkpoint of the half-resident pod is refused cleanly by the
  // agent (no partial image, no crash), leaving gen G untouched.
  auto bad = c.RunGenerationCheckpoint({c.MemberFor(1, id)});
  EXPECT_FALSE(bad.stats.success);
  EXPECT_EQ(bad.latest_committed, g.generation);

  // Zero orphans: everything under the generation root still belongs to
  // the committed generation.
  ckpt::GenerationStore store(c.fs());
  std::string keep = store.Prefix(g.generation);
  for (const std::string& path : c.fs().List("/ckpt/gens/")) {
    EXPECT_TRUE(path == "/ckpt/gens/SEQ" || path.rfind(keep, 0) == 0)
        << path;
  }

  // Recovery: abandon the stuck copy and restart from gen G on the
  // rebooted source node. The pod must run and make progress.
  c.pods(1).DestroyPod(id);
  c.sim().RunFor(10 * kMillisecond);
  ASSERT_FALSE(c.node(0).failed());  // rebooted
  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_EQ(rs.generation, g.generation);
  os::Pid back = c.pods(0).ToRealPid(id, 1);
  ASSERT_NE(back, os::kNoPid);
  os::Process* proc = c.node(0).os().FindProcess(back);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = proc->memory().ReadU64(apps::kStatusAddr);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(proc->memory().ReadU64(apps::kStatusAddr), before);
}

}  // namespace
}  // namespace cruz
