// Unit tests for the common substrate: byte codecs, CRC32, RNG, errno.
#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/sysresult.h"
#include "common/units.h"

namespace cruz {
namespace {

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);

  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.PutU16(0x0102);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, BlobAndString) {
  ByteWriter w;
  Bytes blob = {1, 2, 3, 4, 5};
  w.PutBlob(blob);
  w.PutString("hello world");

  ByteReader r(w.data());
  EXPECT_EQ(r.GetBlob(), blob);
  EXPECT_EQ(r.GetString(), "hello world");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, EmptyBlob) {
  ByteWriter w;
  w.PutBlob({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetBlob().empty());
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.data());
  r.GetU16();
  EXPECT_THROW(r.GetU32(), CodecError);
}

TEST(Bytes, TruncatedBlobThrows) {
  ByteWriter w;
  w.PutU32(100);  // claims 100 bytes follow
  w.PutU8(1);
  ByteReader r(w.data());
  EXPECT_THROW(r.GetBlob(), CodecError);
}

TEST(Bytes, PatchU16AndU32) {
  ByteWriter w;
  w.PutU16(0);
  w.PutU32(0);
  w.PatchU16(0, 0xBEEF);
  w.PatchU32(2, 0x01020304);
  ByteReader r(w.data());
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0x01020304u);
}

TEST(Bytes, SkipAndRemaining) {
  ByteWriter w;
  w.PutU64(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  r.Skip(5);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_THROW(r.Skip(4), CodecError);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") == 0xCBF43926 (standard check value).
  const char* s = "123456789";
  std::uint32_t crc = Crc32(ByteSpan(
      reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(i));
  Crc32Accumulator acc;
  acc.Update(ByteSpan(data.data(), 300));
  acc.Update(ByteSpan(data.data() + 300, 700));
  EXPECT_EQ(acc.Finish(), Crc32(data));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.NextRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream must not replay the parent stream.
  Rng parent2(21);
  parent2.Fork();
  EXPECT_EQ(parent.NextU64(), parent2.NextU64());
  EXPECT_NE(child.NextU64(), parent.NextU64());
}

TEST(SysResult, ErrnoRoundTrip) {
  SysResult r = SysErr(CRUZ_EAGAIN);
  EXPECT_FALSE(SysOk(r));
  EXPECT_EQ(SysErrno(r), CRUZ_EAGAIN);
  EXPECT_TRUE(SysOk(0));
  EXPECT_TRUE(SysOk(42));
  EXPECT_EQ(SysErrno(42), CRUZ_EOK);
}

TEST(SysResult, ErrnoNames) {
  EXPECT_STREQ(ErrnoName(CRUZ_ECONNREFUSED), "ECONNREFUSED");
  EXPECT_STREQ(ErrnoName(CRUZ_EOK), "OK");
  EXPECT_STREQ(ErrnoName(CRUZ_EPIPE), "EPIPE");
}

TEST(Units, TransmitTime) {
  // 1500 bytes at 1 Gb/s = 12 microseconds.
  EXPECT_EQ(TransmitTimeNs(1500, 1'000'000'000), 12 * kMicrosecond);
  EXPECT_EQ(TransmitTimeNs(1500, 0), 0u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(1500 * kMillisecond), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(250 * kMicrosecond), 0.25);
  EXPECT_DOUBLE_EQ(ToMicros(3 * kMicrosecond), 3.0);
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(CRUZ_CHECK(false, "boom"), InvariantError);
  EXPECT_NO_THROW(CRUZ_CHECK(true, "fine"));
}

}  // namespace
}  // namespace cruz
