// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace cruz::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel is a no-op
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(10, [] {});
  q.RunNext();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<TimeNs> fired;
  q.ScheduleAt(10, [&] {
    fired.push_back(10);
    q.ScheduleAt(15, [&] { fired.push_back(15); });
  });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 15}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent) {
  EventQueue q;
  bool later_fired = false;
  EventId later = q.ScheduleAt(20, [&] { later_fired = true; });
  q.ScheduleAt(10, [&] { q.Cancel(later); });
  while (!q.Empty()) q.RunNext();
  EXPECT_FALSE(later_fired);
}

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = 0;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.Schedule(300, [&] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 200u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.Schedule(50, [] {});
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 200u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(20, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePredicate) {
  Simulator sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<DurationNs>(i) * 10, [&] { ++counter; });
  }
  bool ok = sim.RunWhile([&] { return counter >= 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(sim.Now(), 40u);
}

TEST(Simulator, RunWhileReturnsFalseWhenDrained) {
  Simulator sim;
  sim.Schedule(10, [] {});
  bool ok = sim.RunWhile([] { return false; });
  EXPECT_FALSE(ok);
}

TEST(Simulator, RunWhileRespectsDeadline) {
  Simulator sim;
  int counter = 0;
  sim.Schedule(10, [&] { ++counter; });
  sim.Schedule(1000, [&] { ++counter; });
  bool ok = sim.RunWhile([&] { return counter >= 2; }, 100);
  EXPECT_FALSE(ok);
  EXPECT_EQ(counter, 1);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(50, [] {}), cruz::InvariantError);
}

TEST(Simulator, DeterministicEventCount) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::uint64_t acc = 0;
    // A self-rescheduling event with RNG-dependent delays.
    std::function<void()> tick = [&] {
      acc ^= sim.rng().NextU64();
      if (sim.Now() < 10000) {
        sim.Schedule(1 + sim.rng().NextBelow(100), tick);
      }
    };
    sim.Schedule(0, tick);
    sim.Run();
    return std::pair(acc, sim.events_executed());
  };
  auto [a1, n1] = run(42);
  auto [a2, n2] = run(42);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(n1, n2);
}

// --- differential oracle -----------------------------------------------------
//
// A naive reference queue with the same (time, insertion-seq) contract:
// a flat vector, linear-scan min extraction. Obviously correct, O(n) per
// op — the indexed heap must agree with it on every observable behavior.
class ReferenceQueue {
 public:
  std::uint64_t Schedule(TimeNs when) {
    std::uint64_t tag = next_tag_++;
    pending_.push_back(Entry{when, next_seq_++, tag});
    return tag;
  }
  bool Cancel(std::uint64_t tag) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].tag == tag) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  bool IsPending(std::uint64_t tag) const {
    for (const Entry& e : pending_) {
      if (e.tag == tag) return true;
    }
    return false;
  }
  bool Empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }
  TimeNs NextTime() const { return pending_[Min()].when; }
  // Pops the earliest entry, returns its tag; stores its time in *when.
  std::uint64_t PopNext(TimeNs* when) {
    std::size_t at = Min();
    Entry e = pending_[at];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(at));
    *when = e.when;
    return e.tag;
  }
  std::uint64_t MinTag() const { return pending_[Min()].tag; }

 private:
  struct Entry {
    TimeNs when;
    std::uint64_t seq;
    std::uint64_t tag;
  };
  std::size_t Min() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].when < pending_[best].when ||
          (pending_[i].when == pending_[best].when &&
           pending_[i].seq < pending_[best].seq)) {
        best = i;
      }
    }
    return best;
  }
  std::vector<Entry> pending_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_tag_ = 1;
};

TEST(EventQueueDifferential, AgreesWithNaiveReferenceQueue) {
  // ~50k randomized schedule/cancel/pop/introspect steps across seeds,
  // biased to hit cancel-at-top, cancel-missing, and same-tick
  // rescheduling (the RTO pattern: cancel + schedule at the same time).
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 20260808ull}) {
    cruz::Rng rng(seed);
    EventQueue q;
    ReferenceQueue ref;
    std::unordered_map<std::uint64_t, EventId> live;  // tag -> id
    std::vector<std::pair<std::uint64_t, EventId>> dead;
    TimeNs now = 0;
    std::uint64_t fired_tag = 0;

    auto schedule = [&](TimeNs when) {
      std::uint64_t tag = ref.Schedule(when);
      EventId id = q.ScheduleAt(when, [&fired_tag, tag] { fired_tag = tag; });
      EXPECT_NE(id, kInvalidEventId);
      live.emplace(tag, id);
    };

    for (int step = 0; step < 10000; ++step) {
      std::uint32_t r = rng.NextBelow(100);
      if (r < 40 || ref.Empty()) {
        schedule(now + rng.NextBelow(50));
      } else if (r < 55) {
        // Cancel the event at the top of the queue — exercises root
        // removal and re-heapification.
        std::uint64_t tag = ref.MinTag();
        EventId id = live.at(tag);
        EXPECT_TRUE(q.Cancel(id));
        EXPECT_TRUE(ref.Cancel(tag));
        dead.emplace_back(tag, id);
        live.erase(tag);
      } else if (r < 70) {
        // Cancel a uniformly random pending event.
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        EXPECT_TRUE(q.Cancel(it->second));
        EXPECT_TRUE(ref.Cancel(it->first));
        dead.emplace_back(it->first, it->second);
        live.erase(it);
      } else if (r < 78 && !dead.empty()) {
        // Cancel-missing: stale ids must return false on both sides and
        // then reschedule at the *same tick* as the current head.
        auto [tag, id] = dead[rng.NextBelow(dead.size())];
        EXPECT_FALSE(q.Cancel(id));
        EXPECT_FALSE(ref.Cancel(tag));
        schedule(ref.Empty() ? now : ref.NextTime());
      } else if (r < 85) {
        // IsPending agreement on a live id, a dead id, and garbage.
        auto it = live.begin();
        std::advance(it, rng.NextBelow(live.size()));
        EXPECT_TRUE(q.IsPending(it->second));
        EXPECT_TRUE(ref.IsPending(it->first));
        if (!dead.empty()) {
          auto [tag, id] = dead[rng.NextBelow(dead.size())];
          EXPECT_EQ(q.IsPending(id), ref.IsPending(tag));
        }
        EXPECT_FALSE(q.IsPending(kInvalidEventId));
        EXPECT_FALSE(q.IsPending(0xDEADBEEFDEADBEEFull));
      } else {
        // Pop: same time, same event (the tie-break contract).
        ASSERT_EQ(q.Empty(), ref.Empty());
        ASSERT_EQ(q.NextTime(), ref.NextTime());
        TimeNs q_when = 0, ref_when = 0;
        EventQueue::Callback cb = q.PopNext(&q_when);
        std::uint64_t expect_tag = ref.PopNext(&ref_when);
        ASSERT_EQ(q_when, ref_when);
        now = q_when;
        fired_tag = 0;
        cb();
        ASSERT_EQ(fired_tag, expect_tag) << "seed " << seed;
        dead.emplace_back(expect_tag, live.at(expect_tag));
        live.erase(expect_tag);
      }
      ASSERT_EQ(q.size(), ref.size());
      ASSERT_EQ(q.Empty(), ref.Empty());
      if (!ref.Empty()) {
        ASSERT_EQ(q.NextTime(), ref.NextTime());
      }
    }

    // Drain: the remaining events must come out in identical order.
    while (!ref.Empty()) {
      TimeNs q_when = 0, ref_when = 0;
      EventQueue::Callback cb = q.PopNext(&q_when);
      std::uint64_t expect_tag = ref.PopNext(&ref_when);
      ASSERT_EQ(q_when, ref_when);
      fired_tag = 0;
      cb();
      ASSERT_EQ(fired_tag, expect_tag);
    }
    EXPECT_TRUE(q.Empty());
  }
}

// --- leak regression ---------------------------------------------------------

TEST(EventQueue, CancelledEventsDoNotAccumulateStorage) {
  // The pre-rewrite queue left cancelled entries in the heap until their
  // (possibly far-future) deadline: 100k RTO-style cancel+reschedule
  // cycles grew it to 100k entries. The indexed heap removes eagerly, so
  // storage stays bounded by the peak number of simultaneously pending
  // events.
  EventQueue q;
  EventId rto = q.ScheduleAt(1'000'000'000, [] {});
  for (int i = 0; i < 100'000; ++i) {
    EXPECT_TRUE(q.Cancel(rto));
    rto = q.ScheduleAt(1'000'000'000 + i, [] {});
  }
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LE(q.storage_slots(), 2u);

  // Churn with 64 concurrent timers: footprint tracks the high-water
  // mark of pending events, not the op count.
  EventQueue q2;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q2.ScheduleAt(1000 + i, [] {}));
  }
  cruz::Rng rng(3);
  for (int i = 0; i < 50'000; ++i) {
    std::size_t at = rng.NextBelow(ids.size());
    EXPECT_TRUE(q2.Cancel(ids[at]));
    ids[at] = q2.ScheduleAt(1000 + rng.NextBelow(1 << 20), [] {});
  }
  EXPECT_EQ(q2.size(), 64u);
  EXPECT_LE(q2.storage_slots(), 65u);
}

}  // namespace
}  // namespace cruz::sim
