// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace cruz::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(5, [&] { order.push_back(2); });
  q.ScheduleAt(5, [&] { order.push_back(3); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  EventId id = q.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel is a no-op
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  EventId id = q.ScheduleAt(10, [] {});
  q.RunNext();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.ScheduleAt(10, [] {});
  q.ScheduleAt(20, [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), 20u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  std::vector<TimeNs> fired;
  q.ScheduleAt(10, [&] {
    fired.push_back(10);
    q.ScheduleAt(15, [&] { fired.push_back(15); });
  });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 15}));
}

TEST(EventQueue, CallbackMayCancelLaterEvent) {
  EventQueue q;
  bool later_fired = false;
  EventId later = q.ScheduleAt(20, [&] { later_fired = true; });
  q.ScheduleAt(10, [&] { q.Cancel(later); });
  while (!q.Empty()) q.RunNext();
  EXPECT_FALSE(later_fired);
}

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  TimeNs seen = 0;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.Schedule(300, [&] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 200u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.Schedule(50, [] {});
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 100u);
  sim.RunFor(100);
  EXPECT_EQ(sim.Now(), 200u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(20, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes with remaining events
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunWhilePredicate) {
  Simulator sim;
  int counter = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<DurationNs>(i) * 10, [&] { ++counter; });
  }
  bool ok = sim.RunWhile([&] { return counter >= 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(sim.Now(), 40u);
}

TEST(Simulator, RunWhileReturnsFalseWhenDrained) {
  Simulator sim;
  sim.Schedule(10, [] {});
  bool ok = sim.RunWhile([] { return false; });
  EXPECT_FALSE(ok);
}

TEST(Simulator, RunWhileRespectsDeadline) {
  Simulator sim;
  int counter = 0;
  sim.Schedule(10, [&] { ++counter; });
  sim.Schedule(1000, [&] { ++counter; });
  bool ok = sim.RunWhile([&] { return counter >= 2; }, 100);
  EXPECT_FALSE(ok);
  EXPECT_EQ(counter, 1);
}

TEST(Simulator, ScheduleInPastThrows) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(50, [] {}), cruz::InvariantError);
}

TEST(Simulator, DeterministicEventCount) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    std::uint64_t acc = 0;
    // A self-rescheduling event with RNG-dependent delays.
    std::function<void()> tick = [&] {
      acc ^= sim.rng().NextU64();
      if (sim.Now() < 10000) {
        sim.Schedule(1 + sim.rng().NextBelow(100), tick);
      }
    };
    sim.Schedule(0, tick);
    sim.Run();
    return std::pair(acc, sim.events_executed());
  };
  auto [a1, n1] = run(42);
  auto [a2, n2] = run(42);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(n1, n2);
}

}  // namespace
}  // namespace cruz::sim
