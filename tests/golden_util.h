// Byte-exact golden-file comparison for determinism-equivalence tests.
//
// A golden pins the exact output of a fixed-seed run so that refactors of
// the simulator hot path (event queue, allocation pooling, codec inner
// loops) can be proven behavior-preserving: the test fails on the first
// differing byte. Regenerate deliberately with CRUZ_REGEN_GOLDENS=1 after
// an *intentional* behavior change — never to make a perf refactor pass.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace cruz::testing {

#ifndef CRUZ_GOLDEN_DIR
#define CRUZ_GOLDEN_DIR "tests/goldens"
#endif

inline std::string GoldenPath(const std::string& name) {
  return std::string(CRUZ_GOLDEN_DIR) + "/" + name;
}

inline bool RegenGoldens() {
  const char* v = std::getenv("CRUZ_REGEN_GOLDENS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Compares `actual` byte-for-byte against the committed golden `name`.
// With CRUZ_REGEN_GOLDENS=1 the golden is (re)written instead and the
// test records a warning so a regeneration can never pass silently in CI.
inline void ExpectMatchesGolden(const std::string& name,
                                const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (RegenGoldens()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated golden " << path << " (" << actual.size()
                 << " bytes)";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run once with CRUZ_REGEN_GOLDENS=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;
  // Report the first divergence precisely; dumping megabytes of trace
  // into the gtest log helps nobody.
  std::size_t i = 0;
  std::size_t n = std::min(expected.size(), actual.size());
  while (i < n && expected[i] == actual[i]) ++i;
  std::size_t line = 1;
  for (std::size_t j = 0; j < i; ++j) {
    if (expected[j] == '\n') ++line;
  }
  FAIL() << "golden mismatch vs " << path << ": expected " << expected.size()
         << " bytes, got " << actual.size() << " bytes; first diff at byte "
         << i << " (line " << line << ")\n  expected ..."
         << expected.substr(i > 40 ? i - 40 : 0, 80) << "...\n  actual   ..."
         << actual.substr(i > 40 ? i - 40 : 0, 80) << "...";
}

}  // namespace cruz::testing
