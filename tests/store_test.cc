// Multi-tier checkpoint storage (DESIGN.md §11): commit to local +
// partner disks with a background netfs flush, restore across tiers with
// CRC-checked fallback and rebuild-on-restart, survive node loss, netfs
// outage and disk-full. The acceptance scenario — a full checkpoint +
// restart cycle with the netfs unavailable throughout — lives here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/programs.h"
#include "ckpt/generation.h"
#include "ckpt/store/replica.h"
#include "ckpt/store/tiered_store.h"
#include "coord/coordinator.h"
#include "cruz/cluster.h"
#include "obs/trace_query.h"

namespace cruz {
namespace {

constexpr std::uint8_t kLocal = static_cast<std::uint8_t>(ckpt::Tier::kLocal);
constexpr std::uint8_t kPartner =
    static_cast<std::uint8_t>(ckpt::Tier::kPartner);
constexpr std::uint8_t kNetfs = static_cast<std::uint8_t>(ckpt::Tier::kNetfs);

os::PodId SpawnCounterPod(Cluster& c, std::size_t node,
                          const std::string& name) {
  os::PodId id = c.CreatePod(node, name);
  c.pods(node).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  return id;
}

bool PodProcessLive(Cluster& c, std::size_t node, os::PodId pod) {
  os::Pid real = c.pods(node).ToRealPid(pod, 1);
  if (real == os::kNoPid) return false;
  os::Process* proc = c.node(node).os().FindProcess(real);
  return proc != nullptr && proc->state() == os::ProcessState::kLive;
}

coord::Coordinator::Options TieredOptions() {
  coord::Coordinator::Options options;
  options.tiered = true;
  return options;
}

std::string ArgOf(const obs::TraceEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.attrs.args) {
    if (k == key) return v;
  }
  return {};
}

// A tiered checkpoint lands every image on the writer's disk plus its
// ring partner's, records both replicas in the manifest, and drains the
// background netfs flush shortly after.
TEST(TieredStore, CheckpointRecordsReplicasAndFlushes) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  auto result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(result.stats.success) << result.stats.abort_reason;

  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(result.generation);
  ASSERT_TRUE(manifest.has_value());
  ASSERT_EQ(manifest->size(), 2u);
  for (const ckpt::ManifestEntry& e : *manifest) {
    ASSERT_GE(e.replicas.size(), 2u) << e.image_path;
    EXPECT_EQ(e.replicas[0].tier, ckpt::Tier::kLocal);
    EXPECT_EQ(e.replicas[1].tier, ckpt::Tier::kPartner);
    EXPECT_NE(e.replicas[0].node_index, e.replicas[1].node_index);
    EXPECT_GT(e.size, 0u);
    EXPECT_EQ(e.replicas[0].size, e.size);
    EXPECT_EQ(e.replicas[0].crc32, e.crc32);

    os::Node* writer = c.tiered().NodeByIndex(e.replicas[0].node_index);
    os::Node* partner = c.tiered().NodeByIndex(e.replicas[1].node_index);
    ASSERT_NE(writer, nullptr);
    ASSERT_NE(partner, nullptr);
    EXPECT_TRUE(writer->disk().Exists(e.image_path));
    EXPECT_TRUE(partner->disk().Exists(
        std::string(ckpt::TieredStore::kPartnerPrefix) + e.image_path));
  }

  // The background flush makes every image netfs-durable.
  c.sim().RunFor(2 * kSecond);
  EXPECT_EQ(c.tiered().PendingFlushCount(), 0u);
  for (const ckpt::ManifestEntry& e : *manifest) {
    EXPECT_TRUE(c.tiered().FlushedToNetfs(e.image_path)) << e.image_path;
    EXPECT_TRUE(c.fs().Exists(e.image_path)) << e.image_path;
  }
}

// Acceptance criterion: the netfs is unavailable for the entire
// checkpoint + restart cycle. The generation commits to local + partner,
// the fleet restores from those tiers, and the trace attributes every
// restored image to its actual source tier. When the outage ends, the
// flush drains and the manifest lands on the netfs late but intact.
TEST(TieredStore, FullCycleSurvivesNetfsOutage) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  c.fs().set_available(false);
  auto ckpt_result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(ckpt_result.stats.success) << ckpt_result.stats.abort_reason;

  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(ckpt_result.generation);
  ASSERT_TRUE(manifest.has_value());

  // The flush keeps retrying with backoff while the netfs is down.
  EXPECT_GT(c.tiered().PendingFlushCount(), 0u);
  std::uint64_t attempts_early = c.tiered().flush_attempts_total();
  c.sim().RunFor(3 * kSecond);
  EXPECT_GT(c.tiered().flush_attempts_total(), attempts_early);
  for (const ckpt::ManifestEntry& e : *manifest) {
    EXPECT_FALSE(c.tiered().FlushedToNetfs(e.image_path));
  }

  // Lose the pods and restore the whole fleet — netfs still down.
  c.pods(0).DestroyPod(a);
  c.pods(1).DestroyPod(b);
  c.sim().RunFor(5 * kMillisecond);
  auto restart = c.RunGenerationRestart(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(restart.stats.success) << restart.stats.abort_reason;
  EXPECT_EQ(restart.generation, ckpt_result.generation);
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 0, a));
  EXPECT_TRUE(PodProcessLive(c, 1, b));

  // Every member restored from a disk tier, and said so in the trace.
  ASSERT_EQ(restart.stats.restore_sources.size(), 2u);
  for (std::uint8_t src : restart.stats.restore_sources) {
    EXPECT_TRUE(src == kLocal || src == kPartner)
        << "restore source " << static_cast<int>(src);
  }
  obs::TraceQuery query(c.sim().tracer());
  std::size_t attributed = 0;
  for (const obs::TraceEvent* e :
       query.Select(obs::TraceQuery::Filter{}.Name("agent.restore"))) {
    std::string source = ArgOf(*e, "source");
    EXPECT_TRUE(source == "local" || source == "partner") << source;
    ++attributed;
  }
  EXPECT_EQ(attributed, 2u);

  // Outage ends: the flush drains, and the manifest — committed to the
  // disk tiers during the outage — arrives on the netfs intact.
  c.fs().set_available(true);
  c.sim().RunFor(5 * kSecond);
  EXPECT_EQ(c.tiered().PendingFlushCount(), 0u);
  for (const ckpt::ManifestEntry& e : *manifest) {
    EXPECT_TRUE(c.tiered().FlushedToNetfs(e.image_path));
  }
  ckpt::GenerationStore netfs_only(c.fs(),
                                   ckpt::GenerationStore::kDefaultRoot);
  EXPECT_EQ(netfs_only.NewestIntact().value_or(0), ckpt_result.generation);
}

// Failure-domain-aware restart: the writer node dies (taking its tier-1
// cache with it) before anything reached the netfs. The partner replica
// restores the pod on a third node, and rebuild-on-restart repopulates
// that node's local cache.
TEST(TieredStore, NodeAndTier1LossRestoresFromPartner) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  c.fs().set_available(false);  // nothing ever reaches the netfs
  auto ckpt_result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(ckpt_result.stats.success) << ckpt_result.stats.abort_reason;

  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(ckpt_result.generation);
  ASSERT_TRUE(manifest.has_value());
  std::string image_a;
  for (const ckpt::ManifestEntry& e : *manifest) {
    if (e.pod == a) image_a = e.image_path;
  }
  ASSERT_FALSE(image_a.empty());

  // Node 1 dies: processes gone, local disk wiped.
  c.node(0).Fail();
  c.pods(1).DestroyPod(b);
  c.sim().RunFor(5 * kMillisecond);

  // Restore pod a on node 3 (no copy there) and pod b back on node 2.
  auto restart = c.RunGenerationRestart(
      {c.MemberFor(2, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(restart.stats.success) << restart.stats.abort_reason;
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_TRUE(PodProcessLive(c, 2, a));
  EXPECT_TRUE(PodProcessLive(c, 1, b));

  ASSERT_EQ(restart.stats.restore_sources.size(), 2u);
  EXPECT_EQ(restart.stats.restore_sources[0], kPartner);  // pod a
  EXPECT_EQ(restart.stats.restore_sources[1], kLocal);    // pod b
  // Rebuild-on-restart: node 3 now caches pod a's image locally.
  EXPECT_TRUE(c.node(2).disk().Exists(image_a));
}

// CRC-checked fallback: a silently corrupted local copy is skipped for
// the partner's, a corrupted partner copy for the netfs replica, and the
// resolve trace names the rejected tiers.
TEST(TieredStore, CorruptCopiesFallBackAcrossTiers) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  auto ckpt_result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(ckpt_result.stats.success) << ckpt_result.stats.abort_reason;
  c.sim().RunFor(2 * kSecond);  // flush to the netfs

  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(ckpt_result.generation);
  ASSERT_TRUE(manifest.has_value());
  const ckpt::ManifestEntry* entry_a = nullptr;
  for (const ckpt::ManifestEntry& e : *manifest) {
    if (e.pod == a) entry_a = &e;
  }
  ASSERT_NE(entry_a, nullptr);

  // Rot both disk copies of pod a's image; only the netfs replica is
  // still intact.
  os::Node* writer = c.tiered().NodeByIndex(entry_a->replicas[0].node_index);
  os::Node* partner = c.tiered().NodeByIndex(entry_a->replicas[1].node_index);
  ASSERT_NE(writer, nullptr);
  ASSERT_NE(partner, nullptr);
  writer->disk().WriteFile(entry_a->image_path, Bytes{0xba, 0xad});
  partner->disk().WriteFile(
      std::string(ckpt::TieredStore::kPartnerPrefix) + entry_a->image_path,
      Bytes{0xba, 0xad});

  c.pods(0).DestroyPod(a);
  c.pods(1).DestroyPod(b);
  c.sim().RunFor(5 * kMillisecond);
  auto restart = c.RunGenerationRestart(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(restart.stats.success) << restart.stats.abort_reason;

  ASSERT_EQ(restart.stats.restore_sources.size(), 2u);
  EXPECT_EQ(restart.stats.restore_sources[0], kNetfs);  // pod a fell back
  EXPECT_EQ(restart.stats.restore_sources[1], kLocal);  // pod b untouched

  obs::TraceQuery query(c.sim().tracer());
  bool saw_fallback_chain = false;
  for (const obs::TraceEvent* e :
       query.Select(obs::TraceQuery::Filter{}.Name("ckpt.store.resolve"))) {
    if (ArgOf(*e, "path") != entry_a->image_path) continue;
    if (ArgOf(*e, "source") != "netfs") continue;
    std::string chain = ArgOf(*e, "chain");
    EXPECT_NE(chain.find("local:crc"), std::string::npos) << chain;
    EXPECT_NE(chain.find(":crc"), std::string::npos) << chain;
    saw_fallback_chain = true;
  }
  EXPECT_TRUE(saw_fallback_chain);

  // Rebuild-on-restart replaced the rotten local copy with an intact one.
  Bytes rebuilt;
  ASSERT_TRUE(SysOk(writer->disk().ReadFile(entry_a->image_path, rebuilt)));
  EXPECT_EQ(rebuilt.size(), entry_a->size);
}

// -ENOSPC on a node disk evicts the oldest netfs-durable generation's
// files instead of failing the checkpoint, so a tight tier-1 budget
// degrades to "fewer cached generations", not "no checkpoints".
TEST(TieredStore, EnospcEvictsOldestGenerationInsteadOfFailing) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  auto first = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(first.stats.success) << first.stats.abort_reason;
  c.sim().RunFor(2 * kSecond);

  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(first.generation);
  ASSERT_TRUE(manifest.has_value());
  std::uint64_t image_bytes = manifest->front().size;
  ASSERT_GT(image_bytes, 0u);
  // Room for one generation (own image + guarded partner copy + meta)
  // plus one more image, but nowhere near two full generations.
  std::uint64_t budget = 3 * image_bytes + 8 * 1024;
  c.node(0).disk().set_capacity_bytes(budget);
  c.node(1).disk().set_capacity_bytes(budget);

  std::uint64_t newest = first.generation;
  for (int round = 0; round < 3; ++round) {
    auto result = c.RunGenerationCheckpoint(
        {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
    ASSERT_TRUE(result.stats.success)
        << "round " << round << ": " << result.stats.abort_reason;
    newest = result.generation;
    c.sim().RunFor(2 * kSecond);  // let the flush make this gen durable
  }

  // The first generation's tier-1 copies were evicted to make room...
  EXPECT_FALSE(c.node(0).disk().Exists(manifest->front().image_path));
  // ...but it stayed durable on the netfs, and the newest generation is
  // still fully restorable.
  EXPECT_TRUE(c.fs().Exists(manifest->front().image_path));
  c.pods(0).DestroyPod(a);
  c.pods(1).DestroyPod(b);
  c.sim().RunFor(5 * kMillisecond);
  auto restart = c.RunGenerationRestart(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(restart.stats.success) << restart.stats.abort_reason;
  EXPECT_EQ(restart.generation, newest);
}

// Retention: once a generation is fully netfs-durable and newer ones
// exist, its tier-1/2 copies are dropped (keep the last K locally).
TEST(TieredStore, RetentionDropsOldLocalCopiesOnceDurable) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  c.tiered().set_keep_local_generations(1);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  auto first = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(first.stats.success);
  ckpt::GenerationStore store(c.fs(), ckpt::GenerationStore::kDefaultRoot);
  store.set_tiered(&c.tiered());
  auto manifest = store.ReadManifest(first.generation);
  ASSERT_TRUE(manifest.has_value());
  c.sim().RunFor(2 * kSecond);

  auto second = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, TieredOptions());
  ASSERT_TRUE(second.stats.success);
  c.sim().RunFor(2 * kSecond);

  // Generation 1 left the disk tiers but survives on the netfs.
  for (const ckpt::ManifestEntry& e : *manifest) {
    for (std::size_t n = 0; n < c.num_nodes(); ++n) {
      EXPECT_FALSE(c.node(n).disk().Exists(e.image_path));
      EXPECT_FALSE(c.node(n).disk().Exists(
          std::string(ckpt::TieredStore::kPartnerPrefix) + e.image_path));
    }
    EXPECT_TRUE(c.fs().Exists(e.image_path));
  }
  // The newest generation stays hot in tier 1.
  auto newest_manifest = store.ReadManifest(second.generation);
  ASSERT_TRUE(newest_manifest.has_value());
  for (const ckpt::ManifestEntry& e : *newest_manifest) {
    os::Node* writer = c.tiered().NodeByIndex(e.replicas[0].node_index);
    ASSERT_NE(writer, nullptr);
    EXPECT_TRUE(writer->disk().Exists(e.image_path));
  }
}

}  // namespace
}  // namespace cruz
