// The key-value database workload (the "complex applications such as
// databases" of §1) under coordinated checkpoint-restart: every GET is
// verified against the client's mirrored table, so any inconsistency
// between the rolled-back server state and the rolled-back client state
// — or any corruption of the request/response stream — is detected.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "cruz/cluster.h"

namespace cruz {
namespace {

struct KvRig {
  os::PodId db_pod;
  os::PodId client_pod;
  os::Pid client_vpid;
  net::Ipv4Address db_ip;
  apps::KvClientStatus last;
  bool client_done = false;

  static KvRig Start(Cluster& c, std::uint32_t ops, std::uint64_t seed) {
    apps::RegisterKvPrograms();
    KvRig rig;
    rig.db_pod = c.CreatePod(0, "kv");
    rig.db_ip = c.pods(0).Find(rig.db_pod)->ip;
    c.pods(0).SpawnInPod(rig.db_pod, "cruz.kv_server",
                         apps::KvServerArgs(5432));
    c.sim().RunFor(5 * kMillisecond);
    rig.client_pod = c.CreatePod(1, "kvc");
    rig.client_vpid = c.pods(1).SpawnInPod(
        rig.client_pod, "cruz.kv_client",
        apps::KvClientArgs(rig.db_ip, 5432, ops, seed,
                           200 * kMicrosecond));
    return rig;
  }

  void HookExit(Cluster& c) {
    for (std::size_t n = 0; n < c.num_nodes(); ++n) {
      c.node(n).os().set_process_exit_hook([this, &c, n](os::Pid p,
                                                         int code) {
        os::Process* proc = c.node(n).os().FindProcess(p);
        if (proc != nullptr && proc->pod() == client_pod && code == 0) {
          last = apps::ReadKvClientStatus(*proc);
          client_done = true;
        }
      });
    }
  }

  std::uint64_t Ops(Cluster& c, std::size_t client_node = 1) {
    os::Pid real =
        c.pods(client_node).ToRealPid(client_pod, client_vpid);
    os::Process* proc = c.node(client_node).os().FindProcess(real);
    if (proc != nullptr) last = apps::ReadKvClientStatus(*proc);
    return last.operations_done;
  }
};

TEST(KvStore, WorkloadVerifiesWithoutCheckpoints) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  KvRig rig = KvRig::Start(c, 300, 7);
  rig.HookExit(c);
  ASSERT_TRUE(c.sim().RunWhile([&] { return rig.client_done; },
                               c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(rig.last.operations_done, 300u);
  EXPECT_EQ(rig.last.verification_failures, 0u);
}

TEST(KvStore, CheckpointAndContinueKeepsConsistency) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  KvRig rig = KvRig::Start(c, 400, 11);
  rig.HookExit(c);
  // Three checkpoint-and-continues at different workload phases.
  for (int round = 1; round <= 3; ++round) {
    ASSERT_TRUE(c.sim().RunWhile(
        [&] { return rig.Ops(c) >= static_cast<std::uint64_t>(round) *
                                        100; },
        c.sim().Now() + 600 * kSecond));
    coord::Coordinator::Options options;
    options.image_prefix = "/ckpt/kvtest" + std::to_string(round);
    auto stats = c.RunCheckpoint({c.MemberFor(0, rig.db_pod),
                                  c.MemberFor(1, rig.client_pod)},
                                 options);
    ASSERT_TRUE(stats.success);
  }
  ASSERT_TRUE(c.sim().RunWhile([&] { return rig.client_done; },
                               c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(rig.last.operations_done, 400u);
  EXPECT_EQ(rig.last.verification_failures, 0u);
}

// Property: a coordinated rollback at a random workload point (server
// restarted on a spare, client rolled back in place) never produces an
// observable inconsistency.
class KvFailover : public ::testing::TestWithParam<int> {};

TEST_P(KvFailover, RollbackIsConsistent) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
  ClusterConfig config;
  config.num_nodes = 3;
  config.seed = static_cast<std::uint64_t>(seed);
  Cluster c(config);
  KvRig rig = KvRig::Start(c, 300, static_cast<std::uint64_t>(seed));
  rig.HookExit(c);

  std::uint64_t checkpoint_at = 30 + rng.NextBelow(150);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return rig.Ops(c) >= checkpoint_at; },
      c.sim().Now() + 600 * kSecond));
  coord::Coordinator::Options options;
  options.image_prefix = "/ckpt/kvf" + std::to_string(seed);
  auto ck = c.RunCheckpoint(
      {c.MemberFor(0, rig.db_pod), c.MemberFor(1, rig.client_pod)},
      options);
  ASSERT_TRUE(ck.success) << "seed " << seed;

  // Run on a random amount past the checkpoint, then fail the db node.
  c.sim().RunFor(rng.NextBelow(100 * kMillisecond));
  c.node(0).Fail();
  c.pods(1).DestroyPod(rig.client_pod);
  c.sim().RunFor(rng.NextBelow(200 * kMillisecond));
  auto rs = c.RunRestart(
      {c.MemberFor(2, rig.db_pod), c.MemberFor(1, rig.client_pod)},
      ck.image_paths, options);
  ASSERT_TRUE(rs.success) << "seed " << seed;

  ASSERT_TRUE(c.sim().RunWhile([&] { return rig.client_done; },
                               c.sim().Now() + 600 * kSecond))
      << "seed " << seed << " ops=" << rig.last.operations_done;
  EXPECT_EQ(rig.last.operations_done, 300u) << "seed " << seed;
  EXPECT_EQ(rig.last.verification_failures, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvFailover, ::testing::Range(1, 7));

}  // namespace
}  // namespace cruz
