// Fault-tolerance of the coordination protocol itself (the paper notes
// the Fig. 2 algorithm "can be extended in a straightforward way to
// tolerate Coordinator and Agent failures"): lossy control channels,
// duplicated requests, and a randomized chaos sequence of checkpoint /
// kill / restart operations against a verified stream.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/programs.h"
#include "check/explorer.h"
#include "check/scenario.h"
#include "ckpt/engine.h"
#include "ckpt/generation.h"
#include "ckpt/image.h"
#include "ckpt/page_codec.h"
#include "common/crc32.h"
#include "coord/agent.h"
#include "cruz/cluster.h"
#include "fault/fault.h"

namespace cruz::coord {
namespace {

// Makes the coordinator's own link lossy: requests and replies between
// the coordinator and the agents are dropped with probability p, while
// the application nodes' links stay clean.
void MakeCoordinatorLinkLossy(Cluster& c, double p) {
  // Ports are assigned in attach order: app nodes first, coordinator last.
  net::LinkParams lossy;
  lossy.loss_probability = p;
  c.ethernet().SetLinkParams(c.num_nodes(), lossy);
}

TEST(Robustness, CheckpointSurvivesLossyControlChannel) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  MakeCoordinatorLinkLossy(c, 0.4);

  os::PodId rp = c.CreatePod(1, "recv");
  net::Ipv4Address rip = c.pods(1).Find(rp)->ip;
  os::Pid rv = c.pods(1).SpawnInPod(rp, "cruz.stream_receiver",
                                    apps::StreamReceiverArgs(9100));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId sp = c.CreatePod(0, "send");
  c.pods(0).SpawnInPod(sp, "cruz.stream_sender",
                       apps::StreamSenderArgs(rip, 9100, 2 * kMiB));
  apps::StreamStatus last;
  bool receiver_exited = false;
  c.node(1).os().set_process_exit_hook([&](os::Pid p, int) {
    os::Process* proc = c.node(1).os().FindProcess(p);
    if (proc != nullptr && proc->pod() == rp) {
      last = apps::ReadStreamStatus(*proc);
      receiver_exited = true;
    }
  });
  auto status = [&] {
    os::Process* p =
        c.node(1).os().FindProcess(c.pods(1).ToRealPid(rp, rv));
    if (p != nullptr) last = apps::ReadStreamStatus(*p);
    return last;
  };
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return status().bytes > 256 * 1024; },
      c.sim().Now() + 60 * kSecond));

  // Despite 40% control-message loss, retransmission completes the
  // two-phase protocol (several rounds may be needed).
  coord::Coordinator::Options options;
  options.retransmit_interval = 500 * kMillisecond;
  options.timeout = 60 * kSecond;
  auto stats = c.RunCheckpoint(
      {c.MemberFor(0, sp), c.MemberFor(1, rp)}, options);
  EXPECT_TRUE(stats.success);

  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return receiver_exited || status().bytes >= 2 * kMiB; },
      c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(last.bytes, 2 * kMiB);
  EXPECT_EQ(last.mismatches, 0u);
}

TEST(Robustness, RestartSurvivesLossyControlChannel) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);

  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(20 * kMillisecond);
  auto ck = c.RunCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(ck.success);
  c.pods(0).DestroyPod(id);

  MakeCoordinatorLinkLossy(c, 0.4);
  coord::Coordinator::Options options;
  options.retransmit_interval = 500 * kMillisecond;
  options.timeout = 60 * kSecond;
  auto rs = c.RunRestart({c.MemberFor(2, id)}, ck.image_paths, options);
  EXPECT_TRUE(rs.success);
  os::Pid real = c.pods(2).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* proc = c.node(2).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = apps::ReadCounter(*proc);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*proc), before);  // actually resumed
}

TEST(Robustness, DuplicateRequestsAreIdempotent) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  auto stats = c.RunCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(stats.success);
  EXPECT_EQ(c.agent(0).checkpoints_served(), 1u);

  // Replay the original request verbatim (a retransmission arriving after
  // completion): the agent must not checkpoint again.
  CoordMessage dup;
  dup.type = MsgType::kCheckpoint;
  dup.op_id = stats.op_id;
  dup.pod_id = id;
  dup.image_path = stats.image_paths[0];
  net::UdpDatagram dgram;
  dgram.src_port = kCoordinatorPort;
  dgram.dst_port = kAgentPort;
  dgram.payload = dup.Encode();
  net::Ipv4Packet pkt;
  pkt.src = c.coordinator_node().ip();
  pkt.dst = c.node(0).ip();
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  c.coordinator_node().stack().SendIpv4(pkt);
  c.sim().RunFor(kSecond);
  EXPECT_EQ(c.agent(0).checkpoints_served(), 1u);
  // The pod is still live and running.
  os::Pid real = c.pods(0).ToRealPid(id, 1);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->state(), os::ProcessState::kLive);
}

// Chaos: a verified stream job runs while a random sequence of
// checkpoint-and-continue and kill-and-restart operations (with random
// target nodes and random incremental/cow flags) is applied. The stream
// must finish with zero corruption regardless of the sequence.
class ChaosSequence : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSequence, StreamAlwaysIntact) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 5);
  check::Scenario scenario;
  scenario.seed = static_cast<std::uint64_t>(seed);
  scenario.num_nodes = 4;
  scenario.workload = check::WorkloadKind::kStream;
  scenario.workload_units = 3 * kMiB;
  for (int op = 0; op < 5; ++op) {
    check::OpSpec ck;
    ck.kind = check::OpKind::kCheckpoint;
    ck.pre_delay = 20 * kMillisecond + rng.NextBelow(150 * kMillisecond);
    ck.incremental = rng.NextBernoulli(0.5);
    ck.copy_on_write = rng.NextBernoulli(0.5);
    if (ck.copy_on_write) {
      ck.variant = ProtocolVariant::kOptimized;
    }
    scenario.ops.push_back(ck);
    if (rng.NextBernoulli(0.5)) {
      // Kill both pods and restart them on random (distinct) nodes.
      check::OpSpec rs;
      rs.kind = check::OpKind::kRestart;
      rs.pre_delay = rng.NextBelow(300 * kMillisecond);
      rs.placement_salt = static_cast<std::uint32_t>(rng.NextU64());
      scenario.ops.push_back(rs);
    }
  }

  // The oracle subsumes the old hand-rolled assertions: stream intact
  // (workload-intact), checkpoints commit and restarts land correctly,
  // protocol ordering holds, and no partial images are left behind.
  check::Explorer explorer;
  check::RunResult result = explorer.RunScenario(scenario);
  EXPECT_TRUE(result.passed) << result.summary;
  for (const check::Violation& v : result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSequence, ::testing::Range(1, 9));

// Silent corruption of the newest checkpoint generation: restart must
// detect the damaged image through the manifest CRCs and fall back to the
// newest older generation that is fully intact.
TEST(Robustness, RestartFallsBackToNewestIntactGeneration) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(20 * kMillisecond);

  auto g1 = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(g1.stats.success);
  c.sim().RunFor(20 * kMillisecond);
  auto g2 = c.RunGenerationCheckpoint({c.MemberFor(0, id)});
  ASSERT_TRUE(g2.stats.success);
  ASSERT_EQ(g2.latest_committed, g2.generation);

  // Media corruption after commit: flip one bit in the middle of the
  // newest generation's image on the shared FS.
  std::string victim = g2.stats.image_paths.at(0);
  Bytes raw;
  ASSERT_TRUE(SysOk(c.fs().ReadFile(victim, raw)));
  raw[raw.size() / 2] ^= 0x40;
  c.fs().WriteFile(victim, std::move(raw));

  c.pods(0).DestroyPod(id);
  c.sim().RunFor(10 * kMillisecond);
  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.generation, g1.generation);
  EXPECT_EQ(rs.latest_committed, g2.generation);

  os::Pid real = c.pods(0).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = apps::ReadCounter(*proc);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*proc), before);
}

// An agent process dies in the middle of a coordinated checkpoint (after
// writing its image, upon <continue>). Heartbeat probing detects the dead
// agent within a few intervals, the op aborts cleanly, the surviving
// member's pod keeps running, no partial image is left behind, and after
// the agent restarts the next checkpoint commits.
TEST(Robustness, AgentCrashMidCheckpointAbortsCleanly) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(17);
  plan.ArmAgentCrash("node2",
                     static_cast<std::uint8_t>(MsgType::kContinue));
  c.ArmFaults(plan);

  os::PodId a = c.CreatePod(0, "a");
  c.pods(0).SpawnInPod(a, "cruz.counter", apps::CounterArgs(1u << 30));
  os::PodId b = c.CreatePod(1, "b");
  c.pods(1).SpawnInPod(b, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.retransmit_interval = 500 * kMillisecond;
  options.heartbeat_interval = 200 * kMillisecond;
  options.max_missed_heartbeats = 2;
  options.timeout = 60 * kSecond;
  TimeNs op_start = c.sim().Now();
  auto result = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_FALSE(result.stats.success);
  EXPECT_NE(result.stats.abort_reason.find("unresponsive"),
            std::string::npos);
  EXPECT_LT(c.sim().Now() - op_start, 10 * kSecond);  // not the full timeout
  EXPECT_EQ(result.generation, 0u);  // discarded, not committed
  EXPECT_TRUE(c.fs().List("/ckpt/gens/gen_").empty());
  EXPECT_TRUE(c.agent(1).crashed());

  // The healthy member's pod was resumed by the abort and is still live.
  c.sim().RunFor(10 * kMillisecond);
  os::Process* proc = c.node(0).os().FindProcess(c.pods(0).ToRealPid(a, 1));
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->state(), os::ProcessState::kLive);

  // Agent restart (crash recovery): the crashed agent's pod was left
  // stopped behind a drop filter; Reset resumes it and the next
  // checkpoint succeeds end to end.
  c.agent(1).Reset();
  c.sim().RunFor(10 * kMillisecond);
  auto retry = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  EXPECT_TRUE(retry.stats.success);
  EXPECT_EQ(retry.latest_committed, retry.generation);
}

// Chaos under an armed fault plan: checkpoint / kill / restart cycles of
// a verified TCP stream while every control message is subject to seeded
// loss, duplication and delay. The stream must still finish intact, and
// the generation root must hold only committed generations at the end.
class FaultChaos : public ::testing::TestWithParam<int> {};

TEST_P(FaultChaos, StreamIntactUnderArmedPlan) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 17 + 3);
  check::Scenario scenario;
  scenario.seed = static_cast<std::uint64_t>(seed);
  scenario.num_nodes = 4;
  scenario.workload = check::WorkloadKind::kStream;
  scenario.workload_units = 2 * kMiB;
  scenario.faults = {
      {check::FaultSpecKind::kMessageLoss, 0, 100, 0},
      {check::FaultSpecKind::kMessageDup, 0, 150, 0},
      {check::FaultSpecKind::kMessageDelay, 0, 150, 20},
  };
  for (int cycle = 0; cycle < 4; ++cycle) {
    check::OpSpec ck;
    ck.kind = check::OpKind::kCheckpoint;
    ck.pre_delay = 20 * kMillisecond + rng.NextBelow(150 * kMillisecond);
    ck.incremental = rng.NextBernoulli(0.5);
    scenario.ops.push_back(ck);
    if (rng.NextBernoulli(0.5)) {
      check::OpSpec rs;
      rs.kind = check::OpKind::kRestart;
      rs.pre_delay = rng.NextBelow(300 * kMillisecond);
      rs.placement_salt = static_cast<std::uint32_t>(rng.NextU64());
      scenario.ops.push_back(rs);
    }
  }

  // Oracle-checked end state replaces the old manual assertions: stream
  // loss/duplicate-free (workload-intact), restarts on the newest intact
  // generation, and no uncommitted files under the generation root
  // (no-partial-state) — fault handling never leaks partial state.
  check::Explorer explorer;
  check::RunResult result = explorer.RunScenario(scenario);
  EXPECT_TRUE(result.passed) << result.summary;
  for (const check::Violation& v : result.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChaos, ::testing::Range(1, 5));

// --- image codec compatibility ----------------------------------------------

// Version-1 (raw-page) images are the original wire format; a version-2
// producer must keep reading them unchanged, and the raw and compressed
// serializations of one checkpoint must decode to identical state.
TEST(CodecCompat, V1ImagesLoadUnchanged) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  ASSERT_NE(proc, nullptr);
  Bytes page(os::kPageSize, 0x5a);
  for (std::uint64_t i = 0; i < 32; ++i) {
    proc->memory().InstallPage(0x1000 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);

  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(c.pods(0), id);
  ckpt::CheckpointEngine::ResumePod(c.pods(0), id);
  Bytes v1 = ck.Serialize(false);
  Bytes v2 = ck.Serialize(true);
  // Self-describing headers: same magic, version (big-endian u32 at
  // offset 8) distinguishes the page encodings.
  ASSERT_GT(v1.size(), 12u);
  EXPECT_EQ(v1[11], 1);
  EXPECT_EQ(v2[11], 2);
  EXPECT_LT(v2.size(), v1.size());  // constant pages collapse under RLE

  // Both versions decode to the same state: the canonical raw
  // re-serialization of either is byte-identical to the v1 image.
  ckpt::PodCheckpoint from_v1 = ckpt::PodCheckpoint::Deserialize(v1);
  ckpt::PodCheckpoint from_v2 = ckpt::PodCheckpoint::Deserialize(v2);
  EXPECT_EQ(from_v1.Serialize(false), v1);
  EXPECT_EQ(from_v2.Serialize(false), v1);

  // And a v1 image still restores a runnable pod.
  c.pods(0).DestroyPod(id);
  os::PodId restored =
      ckpt::CheckpointEngine::RestorePod(c.pods(0), from_v1);
  ckpt::CheckpointEngine::ResumePod(c.pods(0), restored);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  std::uint64_t before = apps::ReadCounter(*rp);
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*rp), before);
}

// A flipped bit inside one compressed page is caught by that page's own
// CRC even when the medium also happens to re-seal the outer whole-image
// checksum — the per-page check is what localizes the damage.
TEST(CodecCompat, BitFlippedCompressedPageRaisesCodecError) {
  ckpt::PodCheckpoint ck;
  ck.pod_id = 7;
  ck.pod_name = "flip";
  ckpt::ProcessRecord rec;
  rec.vpid = 1;
  rec.program = "cruz.counter";
  ckpt::PageRecord pg;
  pg.page_index = 0x2000;
  pg.content.assign(os::kPageSize, 0xab);
  rec.pages.push_back(pg);
  ck.processes.push_back(std::move(rec));

  Bytes image = ck.Serialize(true);
  ASSERT_NO_THROW(ckpt::PodCheckpoint::Deserialize(image));

  // Flip one bit in the page's encoded RLE payload.
  Bytes needle = ckpt::EncodePage(pg.content, ckpt::PageCodec::kRle);
  auto it = std::search(image.begin(), image.end(),
                        needle.begin(), needle.end());
  ASSERT_NE(it, image.end());
  *(it + static_cast<std::ptrdiff_t>(needle.size()) - 1) ^= 0x04;

  // Re-seal the outer CRC (big-endian u32 trailer over the body, which
  // starts after magic(8) + version(4) + codec(1) + length(4)).
  constexpr std::size_t kBodyStart = 8 + 4 + 1 + 4;
  ASSERT_GT(image.size(), kBodyStart + 4);
  std::uint32_t crc = Crc32(
      ByteSpan(image.data() + kBodyStart, image.size() - kBodyStart - 4));
  image[image.size() - 4] = static_cast<std::uint8_t>(crc >> 24);
  image[image.size() - 3] = static_cast<std::uint8_t>(crc >> 16);
  image[image.size() - 2] = static_cast<std::uint8_t>(crc >> 8);
  image[image.size() - 1] = static_cast<std::uint8_t>(crc);

  EXPECT_THROW(ckpt::PodCheckpoint::Deserialize(image), CodecError);
}

// Generation fallback works for version-2 images too: corruption of the
// newest compressed generation is detected by restart's verification and
// the previous compressed generation is used instead.
TEST(CodecCompat, CompressedGenerationRestartFallsBack) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(20 * kMillisecond);

  coord::Coordinator::Options options;
  options.variant = ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.compress = true;
  auto g1 = c.RunGenerationCheckpoint({c.MemberFor(0, id)}, options);
  ASSERT_TRUE(g1.stats.success);
  c.sim().RunFor(20 * kMillisecond);
  auto g2 = c.RunGenerationCheckpoint({c.MemberFor(0, id)}, options);
  ASSERT_TRUE(g2.stats.success);
  ASSERT_EQ(g2.latest_committed, g2.generation);

  Bytes raw;
  ASSERT_TRUE(SysOk(c.fs().ReadFile(g2.stats.image_paths.at(0), raw)));
  EXPECT_EQ(raw[11], 2);  // the committed image is version-2
  raw[raw.size() / 2] ^= 0x10;
  c.fs().WriteFile(g2.stats.image_paths.at(0), std::move(raw));

  c.pods(0).DestroyPod(id);
  c.sim().RunFor(10 * kMillisecond);
  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.generation, g1.generation);
  EXPECT_EQ(rs.latest_committed, g2.generation);

  os::Pid real = c.pods(0).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = apps::ReadCounter(*proc);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*proc), before);
}

// A store can accumulate generations written by different codec
// versions (an upgrade enables compression mid-history). Fallback must
// walk across the codec boundary: with both version-2 generations
// corrupted, restart lands on the oldest generation — a version-1 image
// written before the upgrade.
TEST(CodecCompat, FallbackWalksAcrossMixedCodecGenerations) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(20 * kMillisecond);

  // Generation 1: pre-upgrade, uncompressed (version-1 codec).
  coord::Coordinator::Options v1;
  v1.compress = false;
  auto g1 = c.RunGenerationCheckpoint({c.MemberFor(0, id)}, v1);
  ASSERT_TRUE(g1.stats.success);

  // Generations 2 and 3: post-upgrade, compressed (version-2 codec).
  coord::Coordinator::Options v2;
  v2.compress = true;
  c.sim().RunFor(20 * kMillisecond);
  auto g2 = c.RunGenerationCheckpoint({c.MemberFor(0, id)}, v2);
  ASSERT_TRUE(g2.stats.success);
  c.sim().RunFor(20 * kMillisecond);
  auto g3 = c.RunGenerationCheckpoint({c.MemberFor(0, id)}, v2);
  ASSERT_TRUE(g3.stats.success);
  ASSERT_EQ(g3.latest_committed, g3.generation);

  // The history really is mixed-codec: byte 11 is the codec version.
  auto codec_version = [&](const std::string& path) {
    Bytes raw;
    EXPECT_TRUE(SysOk(c.fs().ReadFile(path, raw)));
    return raw.size() > 11 ? raw[11] : 0;
  };
  EXPECT_EQ(codec_version(g1.stats.image_paths.at(0)), 1);
  EXPECT_EQ(codec_version(g2.stats.image_paths.at(0)), 2);
  EXPECT_EQ(codec_version(g3.stats.image_paths.at(0)), 2);

  // Corrupt BOTH version-2 generations after commit.
  for (const auto* gen : {&g3, &g2}) {
    Bytes raw;
    ASSERT_TRUE(SysOk(c.fs().ReadFile(gen->stats.image_paths.at(0), raw)));
    raw[raw.size() / 2] ^= 0x10;
    c.fs().WriteFile(gen->stats.image_paths.at(0), std::move(raw));
  }

  c.pods(0).DestroyPod(id);
  c.sim().RunFor(10 * kMillisecond);
  auto rs = c.RunGenerationRestart({c.MemberFor(0, id)});
  EXPECT_TRUE(rs.stats.success);
  EXPECT_TRUE(rs.fell_back);
  EXPECT_EQ(rs.generation, g1.generation);  // crossed 2 codec-v2 gens
  EXPECT_EQ(rs.latest_committed, g3.generation);

  // The restored (version-1) image runs: the counter makes progress.
  os::Pid real = c.pods(0).ToRealPid(id, 1);
  ASSERT_NE(real, os::kNoPid);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  std::uint64_t before = apps::ReadCounter(*proc);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*proc), before);
}

}  // namespace
}  // namespace cruz::coord
