// Forked (copy-on-write) checkpointing and the compressed page codec.
//
// The central property under test: a PodSnapshot taken under the stop is
// byte-stable — materializing it AFTER the pod has resumed and run a
// write-heavy workload produces an image byte-identical to a
// stop-the-world capture taken at the snapshot point. This is verified
// differentially over many seeds with randomized working sets and write
// patterns (satellite 1 of the concurrent-COW issue).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "apps/programs.h"
#include "ckpt/engine.h"
#include "ckpt/page_codec.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/rng.h"
#include "cruz/cluster.h"

namespace cruz::ckpt {
namespace {

// --- os::Memory snapshot semantics -----------------------------------------

TEST(CowMemory, WritesAfterSnapshotCopyInsteadOfMutating) {
  os::Memory m;
  m.WriteU64(0x1000, 11);
  m.WriteU64(0x2000, 22);
  os::MemorySnapshot snap = m.Snapshot();
  EXPECT_EQ(snap.PageCount(), 2u);
  EXPECT_EQ(m.cow_faults(), 0u);

  m.WriteU64(0x1000, 99);  // shared page: must copy first
  EXPECT_EQ(m.cow_faults(), 1u);
  m.WriteU64(0x1008, 100);  // page is private now: no second fault
  EXPECT_EQ(m.cow_faults(), 1u);
  m.WriteU64(0x3000, 33);  // fresh page: never shared, no fault
  EXPECT_EQ(m.cow_faults(), 1u);

  // The snapshot still sees the snapshot-point bytes...
  const os::MemorySnapshot::Page* page = snap.Find(1);
  ASSERT_NE(page, nullptr);
  std::uint64_t v = 0;
  std::memcpy(&v, page->data(), sizeof(v));
  EXPECT_EQ(v, 11u);
  EXPECT_EQ(snap.Find(3), nullptr);  // post-snapshot page is not in it
  // ...while the live memory sees the new value.
  EXPECT_EQ(m.ReadU64(0x1000), 99u);

  // Dropping the live page does not disturb the snapshot either.
  m.Clear();
  page = snap.Find(2);
  ASSERT_NE(page, nullptr);
  std::memcpy(&v, page->data(), sizeof(v));
  EXPECT_EQ(v, 22u);
}

// --- page codec -------------------------------------------------------------

TEST(PageCodec, RoundTripsConstantAndRandomPages) {
  Rng rng(42);
  cruz::Bytes constant(os::kPageSize, 0x5A);
  cruz::Bytes encoded = EncodePage(constant, PageCodec::kRle);
  EXPECT_LT(encoded.size(), 64u);  // 4 KiB of one byte shrinks to tokens
  EXPECT_EQ(DecodePage(encoded), constant);

  cruz::Bytes random(os::kPageSize);
  for (auto& b : random) b = static_cast<std::uint8_t>(rng.NextBelow(256));
  encoded = EncodePage(random, PageCodec::kRle);
  // Incompressible data falls back to the raw codec: bounded overhead.
  EXPECT_EQ(encoded[0], static_cast<std::uint8_t>(PageCodec::kRaw));
  EXPECT_LE(encoded.size(), os::kPageSize + 5);
  EXPECT_EQ(DecodePage(encoded), random);
}

// Scalar bit-at-a-time CRC-32 (IEEE, reflected): the reference the
// sliced production implementation must match bit-for-bit.
std::uint32_t ReferenceCrc32(cruz::ByteSpan data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    c ^= b;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(PageCodec, SlicedCrcMatchesScalarReference) {
  // Empty input and the known check value for "123456789".
  EXPECT_EQ(cruz::Crc32({}), ReferenceCrc32({}));
  const char* check = "123456789";
  cruz::ByteSpan check_span(reinterpret_cast<const std::uint8_t*>(check), 9);
  EXPECT_EQ(cruz::Crc32(check_span), 0xCBF43926u);

  cruz::Bytes ff(os::kPageSize, 0xFF);
  EXPECT_EQ(cruz::Crc32(ff), ReferenceCrc32(ff));

  Rng rng(20260808);
  for (int trial = 0; trial < 16; ++trial) {
    // Odd lengths exercise the scalar tail after the 8-byte folds.
    std::size_t len = 1 + rng.NextBelow(os::kPageSize + 7);
    cruz::Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    EXPECT_EQ(cruz::Crc32(data), ReferenceCrc32(data)) << "len " << len;

    // Incremental updates split at an arbitrary point must agree too.
    Crc32Accumulator acc;
    std::size_t cut = rng.NextBelow(len + 1);
    acc.Update(cruz::ByteSpan(data.data(), cut));
    acc.Update(cruz::ByteSpan(data.data() + cut, len - cut));
    EXPECT_EQ(acc.Finish(), ReferenceCrc32(data));
  }
}

TEST(PageCodec, PreChangeImagesDecodeUnchanged) {
  // Hand-encoded pages in the on-disk format produced BEFORE the codec
  // perf pass (format: u8 codec id, u32 CRC of the raw page, payload).
  // The rewrite must keep decoding them byte-for-byte.
  cruz::Bytes raw_page(os::kPageSize);
  for (std::size_t i = 0; i < raw_page.size(); ++i) {
    raw_page[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  cruz::ByteWriter v1;
  v1.PutU8(0);  // kRaw
  v1.PutU32(ReferenceCrc32(raw_page));
  v1.PutBytes(raw_page);
  EXPECT_EQ(DecodePage(v1.data()), raw_page);

  // RLE page with two runs: 4000 bytes of 0x11 then 96 of 0x22.
  cruz::Bytes rle_page;
  rle_page.insert(rle_page.end(), 4000, 0x11);
  rle_page.insert(rle_page.end(), 96, 0x22);
  ASSERT_EQ(rle_page.size(), os::kPageSize);
  cruz::ByteWriter v2;
  v2.PutU8(1);  // kRle
  v2.PutU32(ReferenceCrc32(rle_page));
  v2.PutU16(4000);
  v2.PutU8(0x11);
  v2.PutU16(96);
  v2.PutU8(0x22);
  EXPECT_EQ(DecodePage(v2.data()), rle_page);

  // And the encoder still emits exactly those bytes for the same pages,
  // so images written after the change are identical to before.
  EXPECT_EQ(EncodePage(raw_page, PageCodec::kRle), v1.data());
  EXPECT_EQ(EncodePage(rle_page, PageCodec::kRle), v2.data());
}

TEST(PageCodec, WordScanRleMatchesNaiveEncoderOnRandomPages) {
  // Differential check of the 8-byte-at-a-time run scanner against a
  // naive byte-by-byte encoder, over pages with RLE-friendly structure.
  Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    cruz::Bytes page;
    page.reserve(os::kPageSize);
    while (page.size() < os::kPageSize) {
      std::uint8_t value = static_cast<std::uint8_t>(rng.NextBelow(4));
      std::size_t run = 1 + rng.NextBelow(200);
      run = std::min(run, os::kPageSize - page.size());
      page.insert(page.end(), run, value);
    }
    cruz::ByteWriter naive;
    std::size_t i = 0;
    while (i < page.size()) {
      std::uint8_t value = page[i];
      std::size_t run = 1;
      while (i + run < page.size() && page[i + run] == value &&
             run < 0xFFFF) {
        ++run;
      }
      naive.PutU16(static_cast<std::uint16_t>(run));
      naive.PutU8(value);
      i += run;
    }
    cruz::ByteWriter expect;
    expect.PutU8(1);  // kRle
    expect.PutU32(ReferenceCrc32(page));
    expect.PutBytes(naive.data());
    EXPECT_EQ(EncodePage(page, PageCodec::kRle), expect.data())
        << "trial " << trial;
  }
}

TEST(PageCodec, SingleBitFlipRaisesCodecError) {
  cruz::Bytes page(os::kPageSize, 0);
  for (std::size_t i = 0; i < 512; ++i) {
    page[i * 8] = static_cast<std::uint8_t>(i);
  }
  cruz::Bytes encoded = EncodePage(page, PageCodec::kRle);
  ASSERT_EQ(DecodePage(encoded), page);
  for (std::size_t at : {std::size_t{0}, std::size_t{3},
                         encoded.size() / 2, encoded.size() - 1}) {
    cruz::Bytes damaged = encoded;
    damaged[at] ^= 0x10;
    EXPECT_THROW(DecodePage(damaged), CodecError) << "flip at " << at;
  }
  // Truncation is corruption too.
  cruz::Bytes truncated(encoded.begin(), encoded.end() - 1);
  EXPECT_THROW(DecodePage(truncated), CodecError);
}

TEST(PageCodec, CompressedImageIsVersion2AndEquivalent) {
  PodCheckpoint ck;
  ck.pod_name = "codec";
  ProcessRecord p;
  p.vpid = 1;
  p.program = "cruz.counter";
  p.pages.push_back(PageRecord{4, cruz::Bytes(os::kPageSize, 0xAB)});
  p.pages.push_back(PageRecord{9, cruz::Bytes(os::kPageSize, 0x00)});
  ck.processes.push_back(p);

  cruz::Bytes raw = ck.Serialize(false);
  cruz::Bytes compressed = ck.Serialize(true);
  EXPECT_LT(compressed.size(), raw.size() / 2);  // constant pages collapse
  // Both versions decode to the same checkpoint.
  PodCheckpoint from_raw = PodCheckpoint::Deserialize(raw);
  PodCheckpoint from_z = PodCheckpoint::Deserialize(compressed);
  EXPECT_EQ(from_raw.Serialize(false), from_z.Serialize(false));
  EXPECT_EQ(from_z.processes.at(0).pages.at(0).content,
            cruz::Bytes(os::kPageSize, 0xAB));
}

// --- the differential test ---------------------------------------------------

// One seed: build a pod with a randomized working set (a mix of
// RLE-friendly constant pages and incompressible random pages), snapshot
// it, serialize the reference image immediately — this is exactly what a
// stop-the-world capture at the snapshot point writes, since CapturePod
// is SnapshotPod + Materialize — then resume the pod and hammer its
// memory concurrently with simulated time advancing (the counter program
// keeps writing too). Materializing the snapshot afterwards must produce
// the identical bytes, raw and compressed.
class CowDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CowDifferential, LateMaterializeMatchesSnapshotPoint) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 1);
  ClusterConfig config;
  config.num_nodes = 1;
  config.seed = static_cast<std::uint64_t>(seed);
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  ASSERT_NE(proc, nullptr);

  const std::uint64_t npages = 32 + rng.NextBelow(96);
  for (std::uint64_t i = 0; i < npages; ++i) {
    cruz::Bytes page(os::kPageSize);
    if (rng.NextBernoulli(0.5)) {
      page.assign(os::kPageSize,
                  static_cast<std::uint8_t>(rng.NextBelow(256)));
    } else {
      for (auto& b : page) {
        b = static_cast<std::uint8_t>(rng.NextBelow(256));
      }
    }
    proc->memory().InstallPage(0x100 + i, page);
  }
  c.sim().RunFor(kMillisecond + rng.NextBelow(20 * kMillisecond));

  CaptureStats stats;
  PodSnapshot snap =
      CheckpointEngine::SnapshotPod(c.pods(0), id, CaptureOptions{}, &stats);
  EXPECT_GE(stats.snapshot_pages, npages);
  cruz::Bytes ref_raw = snap.Materialize().Serialize(false);
  cruz::Bytes ref_compressed = snap.Materialize().Serialize(true);
  CheckpointEngine::ResumePod(c.pods(0), id);

  // Write-heavy concurrent phase: random overwrites of snapshot pages and
  // some brand-new pages, interleaved with simulated time (during which
  // the counter program writes as well).
  proc->memory().ResetCowFaults();
  for (int burst = 0; burst < 8; ++burst) {
    const int writes = 1 + static_cast<int>(rng.NextBelow(48));
    for (int w = 0; w < writes; ++w) {
      std::uint64_t page_index = 0x100 + rng.NextBelow(npages + 16);
      std::uint64_t offset = rng.NextBelow(os::kPageSize - 8);
      proc->memory().WriteU64(page_index * os::kPageSize + offset,
                              rng.NextU64());
    }
    c.sim().RunFor(rng.NextBelow(5 * kMillisecond) + 1);
  }
  EXPECT_GT(proc->memory().cow_faults(), 0u) << "seed " << seed;

  // The pod has been running and writing the whole time; the snapshot
  // must not have moved a byte.
  EXPECT_EQ(snap.Materialize().Serialize(false), ref_raw)
      << "seed " << seed;
  EXPECT_EQ(snap.Materialize().Serialize(true), ref_compressed)
      << "seed " << seed;

  // Restoring the late-materialized image reproduces the snapshot-point
  // state exactly (compare against the reference deserialization).
  PodCheckpoint expected = PodCheckpoint::Deserialize(ref_compressed);
  c.pods(0).DestroyPod(id);
  os::PodId restored =
      CheckpointEngine::RestorePod(c.pods(0), snap.Materialize());
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  for (const PageRecord& page : expected.processes.at(0).pages) {
    EXPECT_EQ(rp->memory().ReadBytes(page.page_index * os::kPageSize,
                                     os::kPageSize),
              page.content)
        << "seed " << seed << " page " << page.page_index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowDifferential, ::testing::Range(1, 25));

// --- coordinated downtime split ---------------------------------------------

// With copy-on-write the coordinator-visible downtime must cover only the
// in-memory snapshot, not the background serialize + disk write; with
// stop-the-world the two coincide.
TEST(CowCoordinated, DowntimeExcludesBackgroundWriteOut) {
  auto run = [](bool cow, bool compress) {
    ClusterConfig config;
    config.num_nodes = 1;
    config.node_template.disk_write_bytes_per_sec = 2 * kMiB;  // slow disk
    Cluster c(config);
    os::PodId id = c.CreatePod(0, "job");
    os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                        apps::CounterArgs(1u << 30));
    os::Process* proc =
        c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
    cruz::Bytes page(os::kPageSize, 0x42);
    for (std::uint64_t i = 0; i < 512; ++i) {  // ~2 MiB -> ~1 s disk write
      proc->memory().InstallPage(0x1000 + i, page);
    }
    c.sim().RunFor(10 * kMillisecond);
    coord::Coordinator::Options options;
    options.copy_on_write = cow;
    options.compress = compress;
    if (cow) options.variant = coord::ProtocolVariant::kOptimized;
    options.image_prefix = "/ckpt/downtime";
    auto stats = c.RunCheckpoint({c.MemberFor(0, id)}, options);
    EXPECT_TRUE(stats.success);
    return stats;
  };

  auto stw = run(false, false);
  EXPECT_GT(stw.max_downtime, 0u);
  EXPECT_EQ(stw.max_downtime, stw.max_local);  // stopped for the whole save

  auto cow = run(true, false);
  EXPECT_GT(cow.max_downtime, 0u);
  EXPECT_GT(cow.max_local, cow.max_downtime);
  // The issue's acceptance bar: COW downtime < 25% of stop-the-world.
  EXPECT_LT(cow.max_downtime, stw.max_downtime / 4);

  // Compression shrinks the committed image (constant pages collapse) and
  // keeps it restorable; downtime stays snapshot-bound.
  auto cowz = run(true, true);
  EXPECT_LT(cowz.max_downtime, stw.max_downtime / 4);
  EXPECT_TRUE(cowz.success);
}

// A coordinated COW+compressed checkpoint taken while the pod keeps
// writing commits an image that is valid and restorable.
TEST(CowCoordinated, CompressedCowImageRestores) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.node_template.disk_write_bytes_per_sec = 2 * kMiB;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 512; ++i) {
    proc->memory().InstallPage(0x1000 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.variant = coord::ProtocolVariant::kOptimized;
  options.copy_on_write = true;
  options.compress = true;
  options.image_prefix = "/ckpt/cowz";
  auto stats = c.RunCheckpoint({c.MemberFor(0, id)}, options);
  ASSERT_TRUE(stats.success);

  // The image on the shared FS is a version-2 (compressed) image and far
  // smaller than the raw working set.
  cruz::Bytes image;
  ASSERT_TRUE(SysOk(c.fs().ReadFile(stats.image_paths.at(0), image)));
  EXPECT_LT(image.size(), 512 * os::kPageSize / 4);

  // Restart the pod on the other node from the compressed image.
  c.pods(0).DestroyPod(id);
  auto rs = c.RunRestart({c.MemberFor(1, id)}, stats.image_paths, {});
  ASSERT_TRUE(rs.success);
  os::Process* rp =
      c.node(1).os().FindProcess(c.pods(1).ToRealPid(id, vpid));
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(rp->memory().ReadBytes(0x1000 * os::kPageSize, 16),
            cruz::Bytes(16, 0x42));
  std::uint64_t before = apps::ReadCounter(*rp);
  c.sim().RunFor(20 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*rp), before);  // resumed and running
}

}  // namespace
}  // namespace cruz::ckpt
