// Mode-differential live-migration tests (see tests/migrate_harness.h).
//
// For every seed, the same deterministic workload is migrated under all
// four MigrateModes; a correct migration is invisible to the
// application, so the four final memory images must be bit-identical —
// to each other AND to a plain-C++ reference model of the workload.
// Downtime must be ordered the way the modes are designed to order it,
// and the post-copy page accounting must balance exactly: no page lost,
// none served after the source released its image.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "apps/programs.h"
#include "ckpt/live_migrate.h"
#include "coord/message.h"
#include "migrate_harness.h"

namespace cruz::ckpt {
namespace {

using testing::ModeRun;
using testing::ProfileFromSeed;
using testing::RunScribblerMigration;
using testing::ScribProfile;

// The ckpt library encodes page-channel messages by raw wire byte so it
// does not have to link against coord; pin the bytes to the enum here,
// where both headers are visible.
static_assert(kPageRequestMsgByte ==
              static_cast<std::uint8_t>(coord::MsgType::kPageRequest));
static_assert(kPageResponseMsgByte ==
              static_cast<std::uint8_t>(coord::MsgType::kPageResponse));

constexpr int kSeeds = 24;

// Short hot-set window: the post-copy stop moves at most
// hot_window / 5us + a couple of pages, strictly below the >= 48-page
// pool every pre-copy final round re-dirties.
LiveMigrateOptions HarnessOptions() {
  LiveMigrateOptions options;
  options.hot_window = 200 * kMicrosecond;
  return options;
}

struct SeedMatrix {
  ScribProfile profile;
  std::map<MigrateMode, ModeRun> runs;
};

SeedMatrix RunAllModes(std::uint64_t seed) {
  SeedMatrix m;
  m.profile = ProfileFromSeed(seed);
  for (MigrateMode mode :
       {MigrateMode::kStopAndCopy, MigrateMode::kPreCopy,
        MigrateMode::kPostCopy, MigrateMode::kHybrid}) {
    m.runs[mode] = RunScribblerMigration(m.profile, mode, HarnessOptions());
  }
  return m;
}

TEST(LiveMigrateModes, AllModesProduceIdenticalOutcomes) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SeedMatrix m = RunAllModes(seed);
    cruz::Bytes args = testing::ScribblerArgs(m.profile.scribble_seed,
                                              m.profile.iterations,
                                              m.profile.pool_pages);
    testing::ScribExpectation expected =
        testing::ExpectedScribblerState(m.profile, args);

    for (const auto& [mode, run] : m.runs) {
      SCOPED_TRACE(MigrateModeName(mode));
      ASSERT_TRUE(run.migrated);
      ASSERT_TRUE(run.completed);
      // Exactly one running copy: gone from the source, live on target.
      EXPECT_TRUE(run.source_empty);
      // App-visible output: the workload ran to completion and computed
      // the same checksum it computes on an unmigrated machine.
      EXPECT_EQ(run.count, m.profile.iterations);
      EXPECT_EQ(run.checksum, expected.checksum);
      // Bit-identical final memory image vs the reference model (which
      // also makes all four modes identical to each other).
      EXPECT_EQ(run.image, expected.image);
      EXPECT_EQ(run.stats.mode, mode);
      EXPECT_GT(run.stats.downtime, 0);
    }

    // Downtime ordering is the whole point of the mode ladder. The
    // scribbler writes continuously through every migration, so the
    // inequalities are strict: post-copy moves < 48 hot pages where
    // pre-copy's final round moves the whole >= 48-page working set,
    // and stop-and-copy moves ballast too.
    const ModeRun& stop = m.runs[MigrateMode::kStopAndCopy];
    const ModeRun& pre = m.runs[MigrateMode::kPreCopy];
    const ModeRun& post = m.runs[MigrateMode::kPostCopy];
    const ModeRun& hybrid = m.runs[MigrateMode::kHybrid];
    EXPECT_LT(post.stats.downtime, pre.stats.downtime);
    EXPECT_LT(pre.stats.downtime, stop.stats.downtime);
    // Hybrid's stop transfers kernel state only — the shortest of all.
    EXPECT_LE(hybrid.stats.downtime, post.stats.downtime);

    // Page accounting: nothing lost, nothing served after release.
    for (const ModeRun* r : {&post, &hybrid}) {
      EXPECT_EQ(r->stats.pages_resident_at_resume +
                    r->stats.pages_fetched_on_demand + r->stats.pages_pushed,
                r->stats.pages_total);
      EXPECT_EQ(r->stats.late_serves, 0u);
      // Fault-free channel: nothing times out. (duplicate_fills_dropped
      // may be nonzero even here — a background push can race a demand
      // fetch — but duplicates are idempotent, which the image equality
      // above already proved.)
      EXPECT_EQ(r->stats.requests_retransmitted, 0u);
      EXPECT_GT(r->stats.pages_total, 0u);
    }
    // Post-copy pays for its short stop with demand-fetch degradation;
    // the stop-bounded modes have none by construction.
    EXPECT_EQ(stop.stats.degradation, 0);
    EXPECT_EQ(pre.stats.degradation, 0);
    EXPECT_GT(post.stats.pages_fetched_on_demand +
                  post.stats.pages_pushed,
              0u);
    // Pre-copy did iterative rounds; its per-round breakdown is filled.
    EXPECT_EQ(pre.stats.round_breakdown.size(),
              static_cast<std::size_t>(pre.stats.rounds));
    EXPECT_GE(pre.stats.rounds, 1);
    EXPECT_GE(hybrid.stats.rounds, 1);
  }
}

// A genuinely streaming pod — an unbounded TCP sender plus a scribbler
// that never stops writing — migrated under each stop-bounded mode plus
// post-copy. The write stream never pauses, so the downtime ladder is
// strict, and the TCP stream must keep flowing on the target.
TEST(LiveMigrateModes, StreamingWorkloadDowntimeLadderIsStrict) {
  testing::RegisterScribbler();
  std::map<MigrateMode, LiveMigrateStats> stats;
  for (MigrateMode mode :
       {MigrateMode::kStopAndCopy, MigrateMode::kPreCopy,
        MigrateMode::kPostCopy}) {
    ClusterConfig config;
    config.num_nodes = 3;
    Cluster c(config);
    net::Ipv4Address sink_ip = c.node(2).os().stack().interfaces()[0].ip;
    c.node(2).os().Spawn("cruz.stream_receiver",
                         apps::StreamReceiverArgs(7000));
    c.sim().RunFor(5 * kMillisecond);
    os::PodId id = c.CreatePod(0, "streamer");
    os::Pid sender_vpid = c.pods(0).SpawnInPod(
        id, "cruz.stream_sender", apps::StreamSenderArgs(sink_ip, 7000, 0));
    os::Pid scrib_vpid = c.pods(0).SpawnInPod(
        id, "harness.scribbler",
        testing::ScribblerArgs(7, std::uint64_t{1} << 40, 96));
    // Ballast so stop-and-copy has real bytes to move during the stop.
    os::Process* scrib =
        c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, scrib_vpid));
    cruz::Bytes page(os::kPageSize, 0x37);
    for (std::uint64_t i = 0; i < 1024; ++i) {
      scrib->memory().InstallPage(testing::kScribBallastPage + i, page);
    }
    c.sim().RunFor(20 * kMillisecond);
    bool done = false;
    LiveMigrator::MigrateWithMode(c.pods(0), c.pods(1), id, mode,
                                  HarnessOptions(),
                                  [&](const LiveMigrateStats& s) {
                                    stats[mode] = s;
                                    done = true;
                                  });
    ASSERT_TRUE(c.sim().RunWhile([&] { return done; },
                                 c.sim().Now() + 600 * kSecond));
    // The stream keeps flowing after migration (TCP recovers from the
    // blackout via retransmission; give it a generous window).
    os::Process* moved =
        c.node(1).os().FindProcess(c.pods(1).ToRealPid(id, sender_vpid));
    ASSERT_NE(moved, nullptr);
    c.sim().RunWhile([&] { return !moved->memory().HasMissingPages(); },
                     c.sim().Now() + 600 * kSecond);
    std::uint64_t sent = apps::ReadStreamStatus(*moved).bytes;
    c.sim().RunFor(2 * kSecond);
    EXPECT_GT(apps::ReadStreamStatus(*moved).bytes, sent);
  }
  EXPECT_LT(stats[MigrateMode::kPostCopy].downtime,
            stats[MigrateMode::kPreCopy].downtime);
  EXPECT_LT(stats[MigrateMode::kPreCopy].downtime,
            stats[MigrateMode::kStopAndCopy].downtime);
}

}  // namespace
}  // namespace cruz::ckpt
