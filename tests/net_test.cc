// Unit tests for addresses, packet codecs, NIC filtering, and the switch.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/address.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace cruz::net {
namespace {

TEST(Address, MacFormatParseRoundTrip) {
  MacAddress m = MacAddress::FromId(0xA1B2C3D4);
  EXPECT_EQ(m.ToString(), "02:00:a1:b2:c3:d4");
  EXPECT_EQ(MacAddress::Parse(m.ToString()), m);
}

TEST(Address, MacParseRejectsGarbage) {
  EXPECT_THROW(MacAddress::Parse("not-a-mac"), cruz::CodecError);
  EXPECT_THROW(MacAddress::Parse("01:02:03"), cruz::CodecError);
}

TEST(Address, MacBroadcast) {
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(MacAddress::FromId(1).IsBroadcast());
  EXPECT_TRUE(MacAddress{}.IsZero());
}

TEST(Address, Ipv4FormatParseRoundTrip) {
  Ipv4Address a = Ipv4Address::FromOctets(10, 0, 1, 42);
  EXPECT_EQ(a.ToString(), "10.0.1.42");
  EXPECT_EQ(Ipv4Address::Parse("10.0.1.42"), a);
}

TEST(Address, Ipv4ParseRejectsGarbage) {
  EXPECT_THROW(Ipv4Address::Parse("10.0.1"), cruz::CodecError);
  EXPECT_THROW(Ipv4Address::Parse("10.0.1.999"), cruz::CodecError);
  EXPECT_THROW(Ipv4Address::Parse("10.0.1.4x"), cruz::CodecError);
}

TEST(Address, SameSubnet) {
  Ipv4Address mask = Ipv4Address::FromOctets(255, 255, 255, 0);
  Ipv4Address a = Ipv4Address::Parse("10.0.1.5");
  EXPECT_TRUE(a.SameSubnet(Ipv4Address::Parse("10.0.1.200"), mask));
  EXPECT_FALSE(a.SameSubnet(Ipv4Address::Parse("10.0.2.5"), mask));
}

TEST(Address, EndpointAndTuple) {
  Endpoint e{Ipv4Address::Parse("10.0.0.1"), 8080};
  EXPECT_EQ(e.ToString(), "10.0.0.1:8080");
  FourTuple t{e, Endpoint{Ipv4Address::Parse("10.0.0.2"), 99}};
  EXPECT_EQ(t.Reversed().local, t.remote);
  EXPECT_EQ(t.Reversed().remote, t.local);
}

TEST(Packet, EthernetRoundTrip) {
  EthernetFrame f;
  f.dst = MacAddress::FromId(1);
  f.src = MacAddress::FromId(2);
  f.ether_type = EtherType::kArp;
  f.payload = {9, 8, 7};
  Bytes wire = f.Encode();
  EXPECT_EQ(wire.size(), kEthernetHeaderSize + 3);
  EthernetFrame g = EthernetFrame::Decode(wire);
  EXPECT_EQ(g.dst, f.dst);
  EXPECT_EQ(g.src, f.src);
  EXPECT_EQ(g.ether_type, f.ether_type);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(Packet, EthernetRejectsUnknownEtherType) {
  EthernetFrame f;
  f.dst = MacAddress::FromId(1);
  f.src = MacAddress::FromId(2);
  Bytes wire = f.Encode();
  wire[12] = 0x12;
  wire[13] = 0x34;
  EXPECT_THROW(EthernetFrame::Decode(wire), cruz::CodecError);
}

TEST(Packet, ArpRoundTrip) {
  ArpPacket p;
  p.op = ArpOp::kReply;
  p.sender_mac = MacAddress::FromId(10);
  p.sender_ip = Ipv4Address::Parse("10.0.0.10");
  p.target_mac = MacAddress::FromId(20);
  p.target_ip = Ipv4Address::Parse("10.0.0.20");
  ArpPacket q = ArpPacket::Decode(p.Encode());
  EXPECT_EQ(q.op, p.op);
  EXPECT_EQ(q.sender_mac, p.sender_mac);
  EXPECT_EQ(q.sender_ip, p.sender_ip);
  EXPECT_EQ(q.target_mac, p.target_mac);
  EXPECT_EQ(q.target_ip, p.target_ip);
  EXPECT_FALSE(q.IsGratuitous());
}

TEST(Packet, GratuitousArp) {
  ArpPacket p;
  p.sender_ip = p.target_ip = Ipv4Address::Parse("10.0.0.10");
  EXPECT_TRUE(p.IsGratuitous());
}

TEST(Packet, Ipv4RoundTrip) {
  Ipv4Packet p;
  p.src = Ipv4Address::Parse("10.0.0.1");
  p.dst = Ipv4Address::Parse("10.0.0.2");
  p.proto = IpProto::kTcp;
  p.ttl = 17;
  p.payload = Bytes(100, 0x5A);
  Bytes wire = p.Encode();
  EXPECT_EQ(wire.size(), kIpv4HeaderSize + 100);
  Ipv4Packet q = Ipv4Packet::Decode(wire);
  EXPECT_EQ(q.src, p.src);
  EXPECT_EQ(q.dst, p.dst);
  EXPECT_EQ(q.proto, p.proto);
  EXPECT_EQ(q.ttl, p.ttl);
  EXPECT_EQ(q.payload, p.payload);
}

TEST(Packet, Ipv4ChecksumDetectsCorruption) {
  Ipv4Packet p;
  p.src = Ipv4Address::Parse("10.0.0.1");
  p.dst = Ipv4Address::Parse("10.0.0.2");
  p.payload = {1, 2, 3};
  Bytes wire = p.Encode();
  wire[16] ^= 0xFF;  // corrupt a src-address byte
  EXPECT_THROW(Ipv4Packet::Decode(wire), cruz::CodecError);
}

TEST(Packet, Ipv4TruncatedThrows) {
  Bytes wire(10, 0);
  EXPECT_THROW(Ipv4Packet::Decode(wire), cruz::CodecError);
}

TEST(Packet, UdpRoundTrip) {
  UdpDatagram d;
  d.src_port = 1234;
  d.dst_port = 53;
  d.payload = {42, 43, 44};
  UdpDatagram e = UdpDatagram::Decode(d.Encode());
  EXPECT_EQ(e.src_port, 1234);
  EXPECT_EQ(e.dst_port, 53);
  EXPECT_EQ(e.payload, d.payload);
}

TEST(Packet, InternetChecksumSelfVerifies) {
  Bytes data = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
                0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
                0xc0, 0xa8, 0x00, 0xc7};
  std::uint16_t csum = InternetChecksum(data);
  data[10] = static_cast<std::uint8_t>(csum >> 8);
  data[11] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(InternetChecksum(data), 0);
}

// --- NIC + switch integration ---------------------------------------------

struct TwoNics {
  sim::Simulator sim;
  EthernetSwitch sw{sim, LinkParams{}};
  Nic a{sim, MacAddress::FromId(1), "nicA"};
  Nic b{sim, MacAddress::FromId(2), "nicB"};
  std::vector<EthernetFrame> a_rx, b_rx;

  TwoNics() {
    sw.AttachNic(&a);
    sw.AttachNic(&b);
    a.set_receive_handler(
        [this](ByteSpan w) { a_rx.push_back(EthernetFrame::Decode(w)); });
    b.set_receive_handler(
        [this](ByteSpan w) { b_rx.push_back(EthernetFrame::Decode(w)); });
  }

  EthernetFrame MakeFrame(MacAddress dst, MacAddress src, Bytes payload) {
    EthernetFrame f;
    f.dst = dst;
    f.src = src;
    f.ether_type = EtherType::kIpv4;
    // Valid IPv4 payload so Decode in handlers can parse if needed.
    f.payload = std::move(payload);
    return f;
  }
};

TEST(Switch, DeliversUnicastAfterLearning) {
  TwoNics t;
  // First frame from A floods (B unknown), B learns A; reply is unicast.
  EthernetFrame f = t.MakeFrame(t.b.primary_mac(), t.a.primary_mac(), {1});
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  t.a.Transmit(f.Encode());
  t.sim.Run();
  ASSERT_EQ(t.b_rx.size(), 1u);
  EXPECT_EQ(t.b_rx[0].src, t.a.primary_mac());
  EXPECT_EQ(t.sw.flooded_frames(), 1u);

  t.b.Transmit(t.MakeFrame(t.a.primary_mac(), t.b.primary_mac(),
                           ArpPacket{}.Encode())
                   .Encode());
  t.sim.Run();
  ASSERT_EQ(t.a_rx.size(), 1u);
  EXPECT_EQ(t.sw.forwarded_frames(), 1u);
}

TEST(Switch, BroadcastReachesAllButSender) {
  TwoNics t;
  EthernetFrame f =
      t.MakeFrame(MacAddress::Broadcast(), t.a.primary_mac(), {});
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(t.b_rx.size(), 1u);
  EXPECT_EQ(t.a_rx.size(), 0u);
}

TEST(Nic, FiltersForeignUnicast) {
  TwoNics t;
  // Frame to a MAC that neither NIC owns: flooded, but filtered at both.
  EthernetFrame f =
      t.MakeFrame(MacAddress::FromId(99), t.a.primary_mac(), {});
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(t.b_rx.size(), 0u);
  EXPECT_EQ(t.b.filtered_frames(), 1u);
}

TEST(Nic, ExtraMacFilterAccepts) {
  TwoNics t;
  MacAddress vif_mac = MacAddress::FromId(99);
  t.b.AddMacFilter(vif_mac);
  EthernetFrame f = t.MakeFrame(vif_mac, t.a.primary_mac(), {});
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(t.b_rx.size(), 1u);

  t.b.RemoveMacFilter(vif_mac);
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(t.b_rx.size(), 1u);  // filtered now
}

TEST(Nic, PromiscuousAcceptsEverything) {
  TwoNics t;
  t.b.set_promiscuous(true);
  EthernetFrame f =
      t.MakeFrame(MacAddress::FromId(99), t.a.primary_mac(), {});
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(t.b_rx.size(), 1u);
}

TEST(Switch, DetachPurgesLearnedMacs) {
  TwoNics t;
  EthernetFrame f = t.MakeFrame(t.b.primary_mac(), t.a.primary_mac(),
                                ArpPacket{}.Encode());
  f.ether_type = EtherType::kArp;
  t.a.Transmit(f.Encode());
  t.sim.Run();
  t.sw.DetachNic(&t.b);
  // Reattach elsewhere: frame must flood again (stale entry purged),
  // and must not be delivered to the old port object.
  Nic c{t.sim, t.b.primary_mac(), "nicB2"};
  std::vector<Bytes> c_rx;
  c.set_receive_handler([&](ByteSpan w) { c_rx.emplace_back(w.begin(), w.end()); });
  t.sw.AttachNic(&c);
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(c_rx.size(), 1u);
}

TEST(Switch, LossDropsFrames) {
  sim::Simulator sim(7);
  LinkParams lossy;
  lossy.loss_probability = 1.0;
  EthernetSwitch sw(sim, lossy);
  Nic a{sim, MacAddress::FromId(1), "a"};
  Nic b{sim, MacAddress::FromId(2), "b"};
  sw.AttachNic(&a);
  sw.AttachNic(&b);
  int rx = 0;
  b.set_receive_handler([&](ByteSpan) { ++rx; });
  EthernetFrame f;
  f.dst = MacAddress::Broadcast();
  f.src = a.primary_mac();
  f.ether_type = EtherType::kArp;
  f.payload = ArpPacket{}.Encode();
  a.Transmit(f.Encode());
  sim.Run();
  EXPECT_EQ(rx, 0);
  EXPECT_GE(sw.dropped_frames(), 1u);
}

TEST(Nic, SerializationDelayMatchesLinkRate) {
  TwoNics t;
  EthernetFrame f = t.MakeFrame(MacAddress::Broadcast(), t.a.primary_mac(),
                                ArpPacket{}.Encode());
  f.ether_type = EtherType::kArp;
  t.a.Transmit(f.Encode());
  std::size_t wire_size = f.Encode().size();
  t.sim.Run();
  // serialization (tx) + forwarding latency + propagation + rx serialization
  DurationNs expected = TransmitTimeNs(wire_size, 1'000'000'000) * 2 +
                        2 * kMicrosecond + 5 * kMicrosecond;
  EXPECT_EQ(t.sim.Now(), expected);
}

TEST(Nic, OversizedFrameDropped) {
  TwoNics t;
  Bytes wire(kEthernetHeaderSize + kEthernetMtu + 1, 0);
  t.a.Transmit(std::move(wire));
  t.sim.Run();
  EXPECT_EQ(t.a.tx_frames(), 0u);
}

TEST(Switch, ObserverSeesFrames) {
  TwoNics t;
  int observed = 0;
  t.sw.set_observer([&](std::size_t, ByteSpan) { ++observed; });
  EthernetFrame f = t.MakeFrame(MacAddress::Broadcast(), t.a.primary_mac(),
                                ArpPacket{}.Encode());
  f.ether_type = EtherType::kArp;
  t.a.Transmit(f.Encode());
  t.sim.Run();
  EXPECT_EQ(observed, 1);
}

}  // namespace
}  // namespace cruz::net
