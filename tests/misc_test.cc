// Cross-cutting properties: whole-run determinism, checkpoint-image
// fuzzing (corruption never crashes, always throws CodecError), and
// checkpoint coverage for the remaining resource kinds — UDP sockets,
// regular-file offsets, and dup-shared descriptors.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "common/crc32.h"
#include "ckpt/engine.h"
#include "cruz/cluster.h"

namespace cruz {
namespace {

// --- determinism ------------------------------------------------------------

struct RunDigest {
  std::uint64_t events = 0;
  std::uint64_t receiver_bytes = 0;
  std::uint64_t image_crc = 0;
};

RunDigest RunScenario(std::uint64_t seed) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.seed = seed;
  config.link.loss_probability = 0.03;  // randomness must be reproducible
  Cluster c(config);
  os::PodId rp = c.CreatePod(1, "recv");
  net::Ipv4Address rip = c.pods(1).Find(rp)->ip;
  os::Pid rv = c.pods(1).SpawnInPod(rp, "cruz.stream_receiver",
                                    apps::StreamReceiverArgs(9100));
  c.sim().RunFor(5 * kMillisecond);
  os::PodId sp = c.CreatePod(0, "send");
  c.pods(0).SpawnInPod(sp, "cruz.stream_sender",
                       apps::StreamSenderArgs(rip, 9100, 0));
  c.sim().RunFor(300 * kMillisecond);
  auto stats = c.RunCheckpoint({c.MemberFor(0, sp), c.MemberFor(1, rp)});
  c.sim().RunFor(300 * kMillisecond);

  RunDigest digest;
  digest.events = c.sim().events_executed();
  os::Process* proc =
      c.node(1).os().FindProcess(c.pods(1).ToRealPid(rp, rv));
  digest.receiver_bytes =
      proc != nullptr ? apps::ReadStreamStatus(*proc).bytes : 0;
  Bytes image;
  c.fs().ReadFile(stats.image_paths[1], image);
  digest.image_crc = Crc32(image);
  return digest;
}

TEST(Determinism, SameSeedBitIdentical) {
  RunDigest a = RunScenario(12345);
  RunDigest b = RunScenario(12345);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.receiver_bytes, b.receiver_bytes);
  EXPECT_EQ(a.image_crc, b.image_crc);  // byte-identical checkpoint image
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunDigest a = RunScenario(1);
  RunDigest b = RunScenario(2);
  // With 3% random loss, different seeds must produce different runs.
  EXPECT_NE(a.events, b.events);
}

// --- image fuzzing -----------------------------------------------------------

TEST(ImageFuzz, RandomCorruptionNeverCrashes) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(c.pods(0), id);
  Bytes image = ck.Serialize();

  Rng rng(99);
  int rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes fuzzed = image;
    int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(
          rng.NextBelow(fuzzed.size()));
      fuzzed[pos] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    }
    try {
      ckpt::PodCheckpoint::Deserialize(fuzzed);
      // Astronomically unlikely: flips cancelled out or hit dead bytes
      // while keeping the CRC valid. Acceptable only if truly identical.
    } catch (const CodecError&) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 199);  // CRC catches essentially everything

  // Truncations at every prefix length are rejected too (sampled).
  for (std::size_t len = 0; len < image.size(); len += 97) {
    Bytes truncated(image.begin(),
                    image.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(ckpt::PodCheckpoint::Deserialize(truncated), CodecError);
  }
}

// --- remaining resource kinds across checkpoint-restart ------------------------

TEST(ResourceCoverage, UdpSocketQueueSurvivesRestore) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "udp");
  net::Ipv4Address pod_ip = c.pods(0).Find(id)->ip;
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  // Give the process a bound UDP socket with queued datagrams.
  os::Os& os = c.node(0).os();
  SysResult fd = os.SysSocketUdp(*proc);
  ASSERT_TRUE(SysOk(fd));
  ASSERT_EQ(os.SysBind(*proc, static_cast<os::Fd>(fd),
                       net::Endpoint{net::kAnyAddress, 5353}),
            0);
  os::SocketId sender = c.node(1).stack().CreateUdpSocket();
  c.node(1).stack().UdpBind(sender, {c.node(1).ip(), 6000});
  c.node(1).stack().UdpSendTo(sender, {pod_ip, 5353}, Bytes{1, 2, 3});
  c.node(1).stack().UdpSendTo(sender, {pod_ip, 5353}, Bytes{4, 5});
  c.sim().RunFor(10 * kMillisecond);

  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(c.pods(0), id);
  ASSERT_EQ(ck.udp.size(), 1u);
  EXPECT_EQ(ck.udp[0].rx.size(), 2u);
  c.pods(0).DestroyPod(id);

  os::PodId restored = ckpt::CheckpointEngine::RestorePod(c.pods(0), ck);
  ckpt::CheckpointEngine::ResumePod(c.pods(0), restored);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  // The queued datagrams are still deliverable, in order, with sources.
  Bytes out;
  net::Endpoint from;
  EXPECT_EQ(os.SysRecvFromUdp(*rp, static_cast<os::Fd>(fd), out, &from), 3);
  EXPECT_EQ(out, (Bytes{1, 2, 3}));
  EXPECT_EQ(from.ip, c.node(1).ip());
  out.clear();
  EXPECT_EQ(os.SysRecvFromUdp(*rp, static_cast<os::Fd>(fd), out, &from), 2);
  // And the socket still receives new traffic at the same port.
  c.node(1).stack().UdpSendTo(sender, {pod_ip, 5353}, Bytes{9});
  c.sim().RunFor(10 * kMillisecond);
  out.clear();
  EXPECT_EQ(os.SysRecvFromUdp(*rp, static_cast<os::Fd>(fd), out, &from), 1);
  EXPECT_EQ(out, (Bytes{9}));
}

TEST(ResourceCoverage, FileOffsetAndDupSharingSurviveRestore) {
  Cluster c;
  c.fs().WriteFile("/data/input.bin", Bytes{10, 20, 30, 40, 50, 60});
  os::PodId id = c.CreatePod(0, "files");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Os& os = c.node(0).os();
  os::Process* proc =
      os.FindProcess(c.pods(0).ToRealPid(id, vpid));
  SysResult fd = os.SysOpen(*proc, "/data/input.bin", false);
  ASSERT_TRUE(SysOk(fd));
  Bytes out;
  ASSERT_EQ(os.SysRead(*proc, static_cast<os::Fd>(fd), out, 2), 2);
  // Dup: both fds share one description (and thus one offset).
  SysResult dup = os.SysDup(*proc, static_cast<os::Fd>(fd));
  ASSERT_TRUE(SysOk(dup));

  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(c.pods(0), id);
  c.pods(0).DestroyPod(id);
  os::PodId restored = ckpt::CheckpointEngine::RestorePod(c.pods(0), ck);
  os::Process* rp =
      os.FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);

  // The offset (2) was preserved, and the dup still shares it.
  out.clear();
  EXPECT_EQ(os.SysRead(*rp, static_cast<os::Fd>(fd), out, 2), 2);
  EXPECT_EQ(out, (Bytes{30, 40}));
  out.clear();
  EXPECT_EQ(os.SysRead(*rp, static_cast<os::Fd>(dup), out, 2), 2);
  EXPECT_EQ(out, (Bytes{50, 60}));  // advanced by the first read: shared
  EXPECT_EQ(rp->LookupFd(static_cast<os::Fd>(fd)),
            rp->LookupFd(static_cast<os::Fd>(dup)));
}

TEST(ResourceCoverage, MultiThreadedProcessSurvivesRestore) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "mt");
  // Reuse the sem_pair-style program via SpawnThread from the sysbench
  // base: simplest is the counter plus a manually added thread.
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  // Add a second thread executing the same program body (the counter is
  // pc-driven, so the thread contributes increments too once primed).
  os::Registers regs;
  regs.r[0] = 1;          // pc past the init state
  regs.r[3] = 1u << 30;   // iterations bound
  os::Tid tid = proc->CreateThread(regs);
  c.node(0).os().MakeRunnable(os::ThreadRef{proc->pid(), tid});
  c.sim().RunFor(10 * kMillisecond);

  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(c.pods(0), id);
  ASSERT_EQ(ck.processes.size(), 1u);
  EXPECT_EQ(ck.processes[0].threads.size(), 2u);
  std::uint64_t frozen = apps::ReadCounter(*proc);
  c.pods(0).DestroyPod(id);

  os::PodId restored = ckpt::CheckpointEngine::RestorePod(c.pods(0), ck);
  ckpt::CheckpointEngine::ResumePod(c.pods(0), restored);
  os::Process* rp =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(restored, vpid));
  ASSERT_NE(rp, nullptr);
  EXPECT_EQ(rp->threads().size(), 2u);
  EXPECT_EQ(apps::ReadCounter(*rp), frozen);
  c.sim().RunFor(10 * kMillisecond);
  EXPECT_GT(apps::ReadCounter(*rp), frozen);  // both threads running again
}

}  // namespace
}  // namespace cruz
