// End-to-end tests for the slm parallel workload and the job scheduler:
// distributed correctness against a reference model, checkpoint
// transparency (checksums unchanged by checkpoints/restarts in the
// middle of the run), and failure recovery through the scheduler.
#include <gtest/gtest.h>

#include "apps/slm.h"
#include "cruz/cluster.h"
#include "cruz/scheduler.h"

namespace cruz {
namespace {

struct SlmJob {
  std::vector<os::PodId> pods;
  std::vector<os::Pid> vpids;
  std::vector<std::size_t> nodes;  // node index per rank
  apps::SlmConfig base;
  std::vector<apps::SlmStatus> final_status;

  // Starts one rank pod per node.
  static SlmJob Start(Cluster& c, std::uint32_t nranks,
                      std::uint32_t iterations,
                      std::uint32_t rows = 32) {
    apps::RegisterSlmProgram();
    SlmJob job;
    job.base.nranks = nranks;
    job.base.rows = rows;
    job.base.cols = 256;
    job.base.iterations = iterations;
    job.base.compute_per_iteration = kMillisecond;
    job.base.exit_when_done = false;  // keep final state observable
    std::vector<net::Ipv4Address> peers;
    for (std::uint32_t r = 0; r < nranks; ++r) {
      std::size_t node = r % c.num_nodes();
      job.nodes.push_back(node);
      job.pods.push_back(c.CreatePod(node, "slm" + std::to_string(r)));
      peers.push_back(c.pods(node).Find(job.pods.back())->ip);
    }
    job.base.peers = peers;
    job.final_status.resize(nranks);
    for (std::uint32_t r = 0; r < nranks; ++r) {
      apps::SlmConfig cfg = job.base;
      cfg.rank = r;
      job.vpids.push_back(c.pods(job.nodes[r]).SpawnInPod(
          job.pods[r], "cruz.slm_rank", apps::SlmArgs(cfg)));
    }
    return job;
  }

  apps::SlmStatus Status(Cluster& c, std::uint32_t rank) {
    os::Pid real =
        c.pods(nodes[rank]).ToRealPid(pods[rank], vpids[rank]);
    os::Process* proc = c.node(nodes[rank]).os().FindProcess(real);
    if (proc != nullptr) {
      final_status[rank] = apps::ReadSlmStatus(*proc);
    }
    return final_status[rank];
  }

  bool AllDone(Cluster& c) {
    for (std::uint32_t r = 0; r < base.nranks; ++r) {
      if (Status(c, r).iterations < base.iterations) return false;
    }
    return true;
  }
};

TEST(Slm, DistributedRunMatchesReference) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  SlmJob job = SlmJob::Start(c, 2, 100);
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 2; ++r) {
    apps::SlmConfig cfg = job.base;
    cfg.rank = r;
    EXPECT_EQ(job.Status(c, r).edge_checksum,
              apps::SlmReferenceChecksum(cfg, 100))
        << "rank " << r;
  }
}

TEST(Slm, FourRanksMatchReference) {
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster c(config);
  SlmJob job = SlmJob::Start(c, 4, 60);
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 4; ++r) {
    apps::SlmConfig cfg = job.base;
    cfg.rank = r;
    EXPECT_EQ(job.Status(c, r).edge_checksum,
              apps::SlmReferenceChecksum(cfg, 60));
  }
}

TEST(Slm, CheckpointMidRunDoesNotPerturbResult) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  SlmJob job = SlmJob::Start(c, 2, 200);
  // Run to the middle, checkpoint (and continue), finish.
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.Status(c, 0).iterations >= 80; },
      c.sim().Now() + 600 * kSecond));
  auto stats = c.RunCheckpoint({c.MemberFor(job.nodes[0], job.pods[0]),
                                c.MemberFor(job.nodes[1], job.pods[1])});
  ASSERT_TRUE(stats.success);
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 2; ++r) {
    apps::SlmConfig cfg = job.base;
    cfg.rank = r;
    EXPECT_EQ(job.Status(c, r).edge_checksum,
              apps::SlmReferenceChecksum(cfg, 200))
        << "rank " << r;
  }
}

TEST(Slm, RestartOnSparesMatchesReference) {
  ClusterConfig config;
  config.num_nodes = 4;  // ranks on 0,1; spares 2,3
  Cluster c(config);
  SlmJob job = SlmJob::Start(c, 2, 150);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return job.Status(c, 0).iterations >= 50; },
      c.sim().Now() + 600 * kSecond));
  coord::Coordinator::Options opts;
  opts.image_prefix = "/ckpt/slm";
  auto ck = c.RunCheckpoint({c.MemberFor(0, job.pods[0]),
                             c.MemberFor(1, job.pods[1])},
                            opts);
  ASSERT_TRUE(ck.success);
  c.sim().RunFor(100 * kMillisecond);
  c.pods(0).DestroyPod(job.pods[0]);
  c.pods(1).DestroyPod(job.pods[1]);
  auto rs = c.RunRestart(
      {c.MemberFor(2, job.pods[0]), c.MemberFor(3, job.pods[1])},
      ck.image_paths, opts);
  ASSERT_TRUE(rs.success);
  job.nodes = {2, 3};
  job.final_status.assign(2, {});
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 2; ++r) {
    apps::SlmConfig cfg = job.base;
    cfg.rank = r;
    EXPECT_EQ(job.Status(c, r).edge_checksum,
              apps::SlmReferenceChecksum(cfg, 150))
        << "rank " << r;
  }
}

// --- scheduler ------------------------------------------------------------------

JobScheduler::JobSpec SlmJobSpec(std::uint32_t nranks,
                                 std::uint32_t iterations,
                                 DurationNs checkpoint_interval) {
  apps::RegisterSlmProgram();
  JobScheduler::JobSpec spec;
  spec.name = "slm";
  spec.checkpoint_interval = checkpoint_interval;
  for (std::uint32_t r = 0; r < nranks; ++r) {
    JobScheduler::TaskSpec task;
    task.program = "cruz.slm_rank";
    task.args = [r, nranks, iterations](
                    const std::vector<net::Ipv4Address>& pods,
                    std::size_t) {
      apps::SlmConfig cfg;
      cfg.rank = r;
      cfg.nranks = nranks;
      cfg.peers = pods;
      cfg.rows = 32;
      cfg.cols = 256;
      cfg.iterations = iterations;
      cfg.compute_per_iteration = kMillisecond;
      return apps::SlmArgs(cfg);
    };
    spec.tasks.push_back(std::move(task));
  }
  return spec;
}

TEST(Scheduler, RunsJobToCompletion) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  JobScheduler sched(c);
  std::uint64_t id = sched.Submit(SlmJobSpec(2, 50, 0));
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        return sched.Find(id)->state == JobScheduler::JobState::kCompleted;
      },
      c.sim().Now() + 600 * kSecond));
}

TEST(Scheduler, PeriodicCheckpointsHappen)  {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  JobScheduler sched(c);
  std::uint64_t id = sched.Submit(SlmJobSpec(2, 400, 100 * kMillisecond));
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return sched.Find(id)->checkpoints_taken >= 3; },
      c.sim().Now() + 600 * kSecond));
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        return sched.Find(id)->state == JobScheduler::JobState::kCompleted;
      },
      c.sim().Now() + 600 * kSecond));
}

TEST(Scheduler, NodeFailureRecoversFromCheckpoint) {
  ClusterConfig config;
  config.num_nodes = 3;  // ranks land on 0 and 1; node 2 is the spare
  Cluster c(config);
  JobScheduler sched(c);
  std::uint64_t id = sched.Submit(SlmJobSpec(2, 300, 100 * kMillisecond));
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return sched.Find(id)->checkpoints_taken >= 1; },
      c.sim().Now() + 600 * kSecond));

  // Fail the node hosting task 0.
  std::size_t victim = sched.Find(id)->tasks[0].node;
  c.node(victim).Fail();
  sched.HandleNodeFailure(victim);
  ASSERT_TRUE(c.sim().RunWhile(
      [&] { return sched.Find(id)->restarts >= 1; },
      c.sim().Now() + 600 * kSecond));
  // The restarted job must run to completion on the surviving nodes.
  ASSERT_TRUE(c.sim().RunWhile(
      [&] {
        return sched.Find(id)->state == JobScheduler::JobState::kCompleted;
      },
      c.sim().Now() + 1200 * kSecond));
  for (const auto& task : sched.Find(id)->tasks) {
    EXPECT_NE(task.node, victim);
  }
}

TEST(Scheduler, JobWithoutCheckpointFailsOnNodeLoss) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  JobScheduler sched(c);
  std::uint64_t id = sched.Submit(SlmJobSpec(2, 100000, 0));
  c.sim().RunFor(100 * kMillisecond);
  std::size_t victim = sched.Find(id)->tasks[0].node;
  c.node(victim).Fail();
  sched.HandleNodeFailure(victim);
  EXPECT_EQ(sched.Find(id)->state, JobScheduler::JobState::kFailed);
}

}  // namespace
}  // namespace cruz
