// Edge cases of the coordination API and protocol: coordinator busy
// preconditions, restart with a missing image, checkpoint of an unknown
// pod, and agents that receive protocol messages out of any operation.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "common/error.h"
#include "cruz/cluster.h"

namespace cruz::coord {
namespace {

TEST(CoordEdge, SecondOperationWhileBusyIsRejected) {
  ClusterConfig config;
  config.num_nodes = 1;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  bool first_done = false;
  c.coordinator().Checkpoint({c.MemberFor(0, id)}, {},
                             [&](const Coordinator::OpStats&) {
                               first_done = true;
                             });
  EXPECT_TRUE(c.coordinator().busy());
  EXPECT_THROW(
      c.coordinator().Checkpoint({c.MemberFor(0, id)}, {}, nullptr),
      InvariantError);
  ASSERT_TRUE(c.sim().RunWhile([&] { return first_done; },
                               c.sim().Now() + 600 * kSecond));
  EXPECT_FALSE(c.coordinator().busy());
}

TEST(CoordEdge, RestartWithMissingImageTimesOut) {
  ClusterConfig config;
  config.num_nodes = 1;
  Cluster c(config);
  Coordinator::Options options;
  options.timeout = 2 * kSecond;
  options.retransmit_interval = 0;  // no point retrying a missing file
  auto stats = c.RunRestart({c.MemberFor(0, 12345)},
                            {"/ckpt/never-written.img"}, options);
  EXPECT_FALSE(stats.success);
}

TEST(CoordEdge, CheckpointOfUnknownPodTimesOut) {
  ClusterConfig config;
  config.num_nodes = 1;
  Cluster c(config);
  Coordinator::Options options;
  options.timeout = 2 * kSecond;
  options.retransmit_interval = 0;
  auto stats = c.RunCheckpoint({c.MemberFor(0, /*pod=*/9999)}, options);
  EXPECT_FALSE(stats.success);
  // The node itself is unharmed and can serve a real checkpoint next.
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  auto ok = c.RunCheckpoint({c.MemberFor(0, id)});
  EXPECT_TRUE(ok.success);
}

TEST(CoordEdge, StrayProtocolMessagesIgnored) {
  ClusterConfig config;
  config.num_nodes = 1;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "job");
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(10 * kMillisecond);
  // A <continue> / <abort> / garbage datagram outside any operation must
  // not disturb the agent or the pod.
  auto send_to_agent = [&](cruz::Bytes payload) {
    net::UdpDatagram dgram;
    dgram.src_port = kCoordinatorPort;
    dgram.dst_port = kAgentPort;
    dgram.payload = std::move(payload);
    net::Ipv4Packet pkt;
    pkt.src = c.coordinator_node().ip();
    pkt.dst = c.node(0).ip();
    pkt.proto = net::IpProto::kUdp;
    pkt.payload = dgram.Encode();
    c.coordinator_node().stack().SendIpv4(pkt);
  };
  CoordMessage stray;
  stray.type = MsgType::kContinue;
  stray.op_id = 777;
  send_to_agent(stray.Encode());
  stray.type = MsgType::kAbort;
  send_to_agent(stray.Encode());
  send_to_agent(cruz::Bytes{0xDE, 0xAD});  // undecodable
  c.sim().RunFor(kSecond);
  os::Pid real = c.pods(0).ToRealPid(id, 1);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->state(), os::ProcessState::kLive);
  // A genuine checkpoint still works afterwards.
  auto stats = c.RunCheckpoint({c.MemberFor(0, id)});
  EXPECT_TRUE(stats.success);
}

TEST(CoordEdge, ManyPodsOneCheckpointEach) {
  // Eight pods across four nodes, checkpointed two at a time (the
  // coordinator handles one operation at a time; callers sequence them).
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster c(config);
  std::vector<os::PodId> pods;
  for (int i = 0; i < 8; ++i) {
    std::size_t node = static_cast<std::size_t>(i) % 4;
    pods.push_back(c.CreatePod(node, "p" + std::to_string(i)));
    c.pods(node).SpawnInPod(pods.back(), "cruz.counter",
                            apps::CounterArgs(1u << 30));
  }
  c.sim().RunFor(10 * kMillisecond);
  for (int pair = 0; pair < 4; ++pair) {
    std::size_t a = static_cast<std::size_t>(pair);
    std::size_t b = static_cast<std::size_t>(pair) + 4;
    coord::Coordinator::Options options;
    options.image_prefix = "/ckpt/pair" + std::to_string(pair);
    auto stats = c.RunCheckpoint(
        {c.MemberFor(a % 4, pods[a]), c.MemberFor(b % 4, pods[b])},
        options);
    EXPECT_TRUE(stats.success) << "pair " << pair;
  }
  // All eight pods still alive and running afterwards.
  for (int i = 0; i < 8; ++i) {
    std::size_t node = static_cast<std::size_t>(i) % 4;
    EXPECT_EQ(c.node(node).os().PodProcesses(pods[static_cast<std::size_t>(
                  i)]).size(),
              1u);
  }
}

}  // namespace
}  // namespace cruz::coord
