// Tests for the pod virtualization layer: virtual pids, bind/connect
// rewriting, the fake-MAC ioctl, VIF lifecycle, and IPC key namespacing.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "cruz/cluster.h"

namespace cruz::pod {
namespace {

TEST(Pod, CreateAssignsVifAndAddresses) {
  Cluster c;
  net::Ipv4Address ip = c.AllocatePodIp();
  os::PodId id = c.CreatePod(0, "alpha", ip);
  Pod* pod = c.pods(0).Find(id);
  ASSERT_NE(pod, nullptr);
  EXPECT_EQ(pod->ip, ip);
  EXPECT_TRUE(c.node(0).stack().OwnsIp(ip));
  EXPECT_TRUE(pod->own_mac);
  EXPECT_TRUE(c.node(0).nic().HasMacFilter(pod->vif_mac));
  EXPECT_FALSE(pod->fake_mac.IsZero());
  EXPECT_NE(pod->fake_mac, pod->vif_mac);
}

TEST(Pod, DestroyRemovesVifAndProcesses) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "alpha");
  net::Ipv4Address ip = c.pods(0).Find(id)->ip;
  c.pods(0).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  c.sim().RunFor(kMillisecond);
  EXPECT_EQ(c.node(0).os().PodProcesses(id).size(), 1u);
  c.pods(0).DestroyPod(id);
  EXPECT_TRUE(c.node(0).os().PodProcesses(id).empty());
  EXPECT_FALSE(c.node(0).stack().OwnsIp(ip));
}

TEST(Pod, VirtualPidsStartAtOne) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "alpha");
  os::Pid v1 = c.pods(0).SpawnInPod(id, "cruz.counter",
                                    apps::CounterArgs(1u << 30));
  os::Pid v2 = c.pods(0).SpawnInPod(id, "cruz.counter",
                                    apps::CounterArgs(1u << 30));
  EXPECT_EQ(v1, 1);
  EXPECT_EQ(v2, 2);
  os::Pid real1 = c.pods(0).ToRealPid(id, v1);
  EXPECT_GT(real1, 2);  // real pids live in the kernel's space
  EXPECT_EQ(c.pods(0).ToVirtualPid(id, real1), v1);
}

TEST(Pod, GetpidReturnsVirtualPid) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "alpha");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Pid real = c.pods(0).ToRealPid(id, vpid);
  os::Process* proc = c.node(0).os().FindProcess(real);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(c.node(0).os().SysGetpid(*proc), vpid);
}

TEST(Pod, KillByVirtualPidConfinedToPod) {
  Cluster c;
  os::PodId a = c.CreatePod(0, "a");
  os::PodId b = c.CreatePod(0, "b");
  os::Pid va = c.pods(0).SpawnInPod(a, "cruz.counter",
                                    apps::CounterArgs(1u << 30));
  os::Pid vb = c.pods(0).SpawnInPod(b, "cruz.counter",
                                    apps::CounterArgs(1u << 30));
  EXPECT_EQ(va, 1);
  EXPECT_EQ(vb, 1);  // both pods have a private pid space
  os::Process* pa =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(a, va));
  ASSERT_NE(pa, nullptr);
  // Pod A's process kills "pid 1": that is its own pod's pid 1, never
  // pod B's.
  EXPECT_EQ(c.node(0).os().SysKill(*pa, va, os::kSigKill), 0);
  EXPECT_EQ(c.pods(0).ToRealPid(a, va), os::kNoPid);
  EXPECT_NE(c.pods(0).ToRealPid(b, vb), os::kNoPid);
}

TEST(Pod, BindRewrittenToPodAddress) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "srv");
  net::Ipv4Address pod_ip = c.pods(0).Find(id)->ip;
  c.pods(0).SpawnInPod(id, "cruz.echo_server", apps::EchoServerArgs(9000));
  c.sim().RunFor(10 * kMillisecond);
  // The server asked for ANY, but Zap's wrapper bound it to the pod IP:
  // connecting to the pod address succeeds...
  os::Pid client = c.node(1).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(pod_ip, 9000, 2, 64, 0));
  int code = -1;
  c.node(1).os().set_process_exit_hook(
      [&](os::Pid p, int exit_code) { if (p == client) code = exit_code; });
  c.sim().RunFor(5 * kSecond);
  EXPECT_EQ(code, 0);
  // ...while the node's own address does not reach the pod's listener.
  os::Pid client2 = c.node(1).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(c.node(0).ip(), 9000, 1, 64, 0));
  int code2 = -1;
  c.node(1).os().set_process_exit_hook(
      [&](os::Pid p, int exit_code) { if (p == client2) code2 = exit_code; });
  c.sim().RunFor(5 * kSecond);
  EXPECT_EQ(code2, CRUZ_ECONNREFUSED);
}

TEST(Pod, FakeMacReturnedByIoctl) {
  Cluster c;
  os::PodId id = c.CreatePod(0, "alpha");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                      apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  ASSERT_NE(proc, nullptr);
  net::MacAddress mac;
  EXPECT_EQ(c.node(0).os().SysGetIfHwAddr(*proc, "eth0", &mac), 0);
  EXPECT_EQ(mac, c.pods(0).Find(id)->fake_mac);
  // Outside a pod, the ioctl reports the real hardware address.
  os::Pid plain = c.node(0).os().Spawn("cruz.counter",
                                       apps::CounterArgs(1u << 30));
  os::Process* pproc = c.node(0).os().FindProcess(plain);
  net::MacAddress real_mac;
  EXPECT_EQ(c.node(0).os().SysGetIfHwAddr(*pproc, "eth0", &real_mac), 0);
  EXPECT_EQ(real_mac, c.node(0).nic().primary_mac());
}

TEST(Pod, IpcKeysNamespaced) {
  Cluster c;
  os::PodId a = c.CreatePod(0, "a");
  os::PodId b = c.CreatePod(0, "b");
  EXPECT_NE(c.pods(0).VirtualizeIpcKey(a, 42),
            c.pods(0).VirtualizeIpcKey(b, 42));
  EXPECT_NE(c.pods(0).VirtualizeIpcKey(a, 42), 42);
}

TEST(Pod, UniqueIdsAcrossNodes) {
  Cluster c;
  os::PodId a = c.CreatePod(0, "a");
  os::PodId b = c.CreatePod(1, "b");
  EXPECT_NE(a, b);
}

TEST(Pod, SharedMacFallback) {
  ClusterConfig config;
  config.node_template.nic_supports_multiple_macs = false;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "alpha");
  Pod* pod = c.pods(0).Find(id);
  EXPECT_FALSE(pod->own_mac);
  EXPECT_EQ(pod->vif_mac, c.node(0).nic().primary_mac());
  // Fake MAC still exists and differs from the shared physical MAC.
  EXPECT_NE(pod->fake_mac, pod->vif_mac);
}

TEST(Pod, DhcpLeaseViaFakeMac) {
  ClusterConfig config;
  config.with_dhcp_server = true;
  Cluster c(config);
  // A pod-to-be on node2 asks DHCP for an address using its fake MAC.
  net::MacAddress fake = net::MacAddress::FromId(0xFA0000FF);
  net::Ipv4Address leased;
  os::DhcpClient::Request(c.node(1).stack(), fake,
                          [&](net::Ipv4Address ip) { leased = ip; });
  c.sim().RunFor(kSecond);
  ASSERT_FALSE(leased.IsZero());
  pod::PodCreateOptions options;
  options.name = "dyn";
  options.ip = leased;
  options.fake_mac = fake;
  os::PodId id = c.pods(1).CreatePod(options);
  EXPECT_TRUE(c.node(1).stack().OwnsIp(leased));
  // After "migration" to node1, the same fake MAC renews the same lease.
  net::Ipv4Address renewed;
  os::DhcpClient::Request(c.node(0).stack(), fake,
                          [&](net::Ipv4Address ip) { renewed = ip; });
  c.sim().RunFor(kSecond);
  EXPECT_EQ(renewed, leased);
  (void)id;
}

}  // namespace
}  // namespace cruz::pod
