// Live (pre-copy) migration: downtime covers only the final dirty set,
// not the whole address space; connections survive; write-heavy pods
// converge via the round limit.
#include <gtest/gtest.h>

#include "apps/programs.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"

namespace cruz::ckpt {
namespace {

// Builds a pod whose process has `static_pages` of untouched memory plus
// the counter's small working set.
os::PodId MakeBigPod(Cluster& c, std::size_t node,
                     std::uint64_t static_pages, os::Pid* vpid_out) {
  os::PodId id = c.CreatePod(node, "big");
  os::Pid vpid = c.pods(node).SpawnInPod(id, "cruz.counter",
                                         apps::CounterArgs(1u << 30));
  os::Process* proc =
      c.node(node).os().FindProcess(c.pods(node).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < static_pages; ++i) {
    proc->memory().InstallPage(0x1000 + i, page);
  }
  if (vpid_out != nullptr) *vpid_out = vpid;
  return id;
}

TEST(LiveMigrate, DowntimeFractionOfStopAndCopy) {
  // ~8 MiB pod, counter touching a single page: pre-copy must converge
  // in a couple of rounds and stop only for kilobytes.
  LiveMigrateStats live, naive;
  for (int mode = 0; mode < 2; ++mode) {
    ClusterConfig config;
    config.num_nodes = 2;
    Cluster c(config);
    os::Pid vpid = 0;
    os::PodId id = MakeBigPod(c, 0, 2048, &vpid);
    c.sim().RunFor(50 * kMillisecond);
    bool done = false;
    LiveMigrateOptions options;
    auto on_done = [&](const LiveMigrateStats& s) {
      (mode == 0 ? live : naive) = s;
      done = true;
    };
    if (mode == 0) {
      LiveMigrator::Migrate(c.pods(0), c.pods(1), id, options, on_done);
    } else {
      LiveMigrator::StopAndCopy(c.pods(0), c.pods(1), id, options,
                                on_done);
    }
    ASSERT_TRUE(c.sim().RunWhile([&] { return done; },
                                 c.sim().Now() + 600 * kSecond));
    // The pod runs on the target afterwards.
    const LiveMigrateStats& s = (mode == 0 ? live : naive);
    os::Pid real = c.pods(1).ToRealPid(s.pod, vpid);
    os::Process* proc = c.node(1).os().FindProcess(real);
    ASSERT_NE(proc, nullptr);
    std::uint64_t counter = apps::ReadCounter(*proc);
    c.sim().RunFor(10 * kMillisecond);
    EXPECT_GT(apps::ReadCounter(*proc), counter);
  }
  EXPECT_GE(live.rounds, 1);  // converges fast: tiny dirty rate
  EXPECT_GT(naive.final_bytes, 8 * kMiB);
  // The headline: live migration's downtime is a small fraction of
  // stop-and-copy's (the 8 MiB transfer happens while running).
  EXPECT_LT(live.downtime, naive.downtime / 10);
  EXPECT_LT(live.final_bytes, 512 * 1024u);
}

TEST(LiveMigrate, WriteHeavyPodStillConverges) {
  // The counter program dirties its status page constantly; with an
  // aggressive threshold the round limit forces the stop.
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::Pid vpid = 0;
  os::PodId id = MakeBigPod(c, 0, 256, &vpid);
  c.sim().RunFor(20 * kMillisecond);
  LiveMigrateOptions options;
  options.stop_threshold_bytes = 0;  // never "small enough"
  options.max_rounds = 4;
  bool done = false;
  LiveMigrateStats stats;
  LiveMigrator::Migrate(c.pods(0), c.pods(1), id, options,
                        [&](const LiveMigrateStats& s) {
                          stats = s;
                          done = true;
                        });
  ASSERT_TRUE(c.sim().RunWhile([&] { return done; },
                               c.sim().Now() + 600 * kSecond));
  EXPECT_EQ(stats.rounds, 4);
  os::Pid real = c.pods(1).ToRealPid(stats.pod, vpid);
  EXPECT_NE(c.node(1).os().FindProcess(real), nullptr);
}

TEST(LiveMigrate, ConnectionSurvivesLiveMigration) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "srv");
  net::Ipv4Address pod_ip = c.pods(0).Find(id)->ip;
  c.pods(0).SpawnInPod(id, "cruz.echo_server", apps::EchoServerArgs(9000));
  // Ballast so the migration actually has rounds to do.
  os::Process* server =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, 1));
  cruz::Bytes page(os::kPageSize, 0x11);
  for (std::uint64_t i = 0; i < 1024; ++i) {
    server->memory().InstallPage(0x10000 + i, page);
  }
  c.sim().RunFor(10 * kMillisecond);
  os::Pid client = c.node(2).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(pod_ip, 9000, 40, 128, 2 * kMillisecond));
  int code = -1;
  apps::EchoClientStatus final_status;
  c.node(2).os().set_process_exit_hook([&](os::Pid p, int exit_code) {
    if (p == client && exit_code == 0) {
      code = exit_code;
      final_status =
          apps::ReadEchoClientStatus(*c.node(2).os().FindProcess(p));
    }
  });
  c.sim().RunFor(20 * kMillisecond);

  bool migrated = false;
  LiveMigrator::Migrate(c.pods(0), c.pods(1), id, {},
                        [&](const LiveMigrateStats&) { migrated = true; });
  ASSERT_TRUE(c.sim().RunWhile([&] { return migrated; },
                               c.sim().Now() + 600 * kSecond));
  c.sim().RunFor(120 * kSecond);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(final_status.messages_done, 40u);
  EXPECT_EQ(final_status.mismatches, 0u);
}

}  // namespace
}  // namespace cruz::ckpt
