// Tests for the causal analysis layer (src/obs/causal): the
// correlation-id join that turns *.msg.send / *.msg.recv instants into
// happens-before edges, the critical-path analyzer's exact phase tiling
// and straggler attribution, the deterministic analyzer output contract,
// and the crash-scoped flight recorder, including replaying a recorded
// violation from the repro string embedded in the artifact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/programs.h"
#include "check/explorer.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"
#include "fault/fault.h"
#include "migrate_harness.h"
#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"
#include "obs/causal/flight_recorder.h"
#include "obs/causal/json_lite.h"
#include "obs/causal/trace_io.h"
#include "obs/trace_query.h"

namespace cruz {
namespace {

using obs::TraceAttrs;
using obs::TraceEvent;
using obs::TraceQuery;
using obs::Tracer;
using obs::causal::CausalGraph;
using obs::causal::CriticalPathAnalyzer;
using obs::causal::FlightRecorder;
using obs::causal::FlightRecorderOptions;
using obs::causal::FlightTrigger;
using obs::causal::ImportJsonl;
using obs::causal::JsonValue;
using obs::causal::OpBreakdown;
using obs::causal::ParseJson;
using obs::causal::PhaseTotal;

// A tracer driven by a hand-cranked clock, so tests control timestamps.
struct ClockedTracer {
  TimeNs now = 0;
  Tracer tracer;

  ClockedTracer() {
    tracer.SetClock([this] { return now; });
  }

  std::vector<TraceEvent> Events() const {
    return std::vector<TraceEvent>(tracer.events().begin(),
                                   tracer.events().end());
  }
};

os::PodId SpawnCounterPod(Cluster& c, std::size_t node,
                          const std::string& name) {
  os::PodId id = c.CreatePod(node, name);
  c.pods(node).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  return id;
}

DurationNs AttributedSum(const OpBreakdown& b) {
  DurationNs sum = 0;
  for (const PhaseTotal& p : b.phases) sum += p.total;
  return sum;
}

const PhaseTotal* FindPhase(const OpBreakdown& b, const std::string& name) {
  for (const PhaseTotal& p : b.phases) {
    if (p.phase == name) return &p;
  }
  return nullptr;
}

// Fault residue stays honest: a wire duplicate joins the same send twice
// (second edge flagged), a dropped transmission is a send with no recv,
// and a recv with an unknown or missing corr id stays unmatched. None of
// these may ever turn into a mis-join.
TEST(CausalGraph, DuplicatedAndDroppedMessagesLeaveHonestResidue) {
  ClockedTracer t;
  t.now = 100;
  t.tracer.Instant("coord", "coord.msg.send",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("coordinator")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "1:checkpoint:10.0.0.99:1"));
  t.now = 150;
  t.tracer.Instant("agent", "agent.msg.recv",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("node1")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "1:checkpoint:10.0.0.99:1"));
  t.now = 160;  // the same datagram again: a wire duplicate
  t.tracer.Instant("agent", "agent.msg.recv",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("node1")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "1:checkpoint:10.0.0.99:1"));
  t.now = 200;  // dropped on the wire: no recv will join it
  t.tracer.Instant("coord", "coord.msg.send",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("coordinator")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "1:checkpoint:10.0.0.99:2"));
  t.now = 250;  // no such send in the window
  t.tracer.Instant("agent", "agent.msg.recv",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("node2")
                       .Arg("type", "done")
                       .Arg("corr", "1:done:10.0.0.3:9"));
  t.now = 260;  // pre-correlation sender: no corr arg at all
  t.tracer.Instant("agent", "agent.msg.recv",
                   TraceAttrs{}.Op(1).Agent("node2").Arg("type", "done"));

  CausalGraph g = CausalGraph::Build(t.Events());
  EXPECT_EQ(g.stats().sends, 2u);
  EXPECT_EQ(g.stats().recvs, 4u);
  EXPECT_EQ(g.stats().matched, 2u);
  EXPECT_EQ(g.stats().duplicate_recvs, 1u);
  EXPECT_EQ(g.stats().unmatched_sends, 1u);
  EXPECT_EQ(g.stats().unmatched_recvs, 2u);
  EXPECT_EQ(g.stats().mis_joins, 0u);

  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_FALSE(g.edges()[0].duplicate);
  EXPECT_TRUE(g.edges()[1].duplicate);
  EXPECT_EQ(g.edges()[0].send, g.edges()[1].send);
  EXPECT_EQ(g.RecvsFor(g.edges()[0].send).size(), 2u);
  ASSERT_EQ(g.UnmatchedSends().size(), 1u);
  EXPECT_EQ(obs::causal::EventArg(g.events()[g.UnmatchedSends()[0]], "corr"),
            "1:checkpoint:10.0.0.99:2");
}

// A corr id that resolves to a send disagreeing on op or message type is
// an instrumentation bug, not an edge: the join is refused and counted.
TEST(CausalGraph, DisagreeingJoinIsRefusedAsMisJoin) {
  ClockedTracer t;
  t.now = 100;
  t.tracer.Instant("agent", "agent.msg.send",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("node1")
                       .Arg("type", "done")
                       .Arg("corr", "1:done:10.0.0.2:1"));
  t.now = 150;  // same corr id, different message type
  t.tracer.Instant("coord", "coord.msg.recv",
                   TraceAttrs{}
                       .Op(1)
                       .Agent("coordinator")
                       .Arg("type", "continue")
                       .Arg("corr", "1:done:10.0.0.2:1"));
  t.now = 160;  // same corr id, different op
  t.tracer.Instant("coord", "coord.msg.recv",
                   TraceAttrs{}
                       .Op(2)
                       .Agent("coordinator")
                       .Arg("type", "done")
                       .Arg("corr", "1:done:10.0.0.2:1"));

  CausalGraph g = CausalGraph::Build(t.Events());
  EXPECT_EQ(g.stats().mis_joins, 2u);
  EXPECT_EQ(g.stats().matched, 0u);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.stats().unmatched_sends, 1u);
}

// On a real checkpoint under message loss, every fault.msg-drop shows up
// as exactly one unmatched send (the transmission's send instant with no
// recv) and nothing else: retransmissions are separate transmissions
// with their own corr ids, so there are no duplicates and no mis-joins.
TEST(CausalGraph, CheckpointDropsShowAsUnmatchedSends) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  fault::FaultPlan plan(777);
  plan.ArmMessageLoss(0.4);
  c.ArmFaults(plan);

  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);
  coord::Coordinator::Options options;
  options.retransmit_interval = 200 * kMillisecond;
  options.timeout = 60 * kSecond;
  auto stats =
      c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  ASSERT_TRUE(stats.success);

  TraceQuery q(c.sim().tracer());
  std::size_t drops = q.Count(TraceQuery::Filter{}.Name("fault.msg-drop"));
  ASSERT_GT(drops, 0u);

  const auto& ring = c.sim().tracer().events();
  CausalGraph g = CausalGraph::Build(
      std::vector<TraceEvent>(ring.begin(), ring.end()));
  EXPECT_EQ(g.stats().unmatched_sends, drops);
  EXPECT_EQ(g.stats().matched, g.stats().sends - drops);
  EXPECT_EQ(g.stats().duplicate_recvs, 0u);
  EXPECT_EQ(g.stats().unmatched_recvs, 0u);
  EXPECT_EQ(g.stats().mis_joins, 0u);
}

// The satellite straggler scenario: four nodes, one with a disk an order
// of magnitude slower. The analyzer must (a) tile the op's wall time
// exactly, (b) charge the slowdown to the save phase — not to
// commit-wait — and (c) name the slow node as the save straggler.
TEST(CriticalPath, SlowDiskStragglerIsChargedToSavePhase) {
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster c(config);
  // node3 (index 2) writes at 32 KiB/s against the 80 MiB/s default.
  c.node(2).set_disk_write_bytes_per_sec(32 * 1024);

  std::vector<coord::Coordinator::Member> members;
  for (std::size_t n = 0; n < 4; ++n) {
    members.push_back(
        c.MemberFor(n, SpawnCounterPod(c, n, "p" + std::to_string(n))));
  }
  c.sim().RunFor(10 * kMillisecond);
  auto stats = c.RunCheckpoint(members);
  ASSERT_TRUE(stats.success);

  const auto& ring = c.sim().tracer().events();
  CausalGraph g = CausalGraph::Build(
      std::vector<TraceEvent>(ring.begin(), ring.end()));
  EXPECT_EQ(g.stats().mis_joins, 0u);
  CriticalPathAnalyzer analyzer(g);
  auto b = analyzer.AnalyzeOp(stats.op_id);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->success);

  // Exact tiling: phase totals sum to the wall time by construction, and
  // effectively everything is explained.
  EXPECT_EQ(AttributedSum(*b), b->wall());
  EXPECT_LT(b->unattributed * 100, b->wall());

  const PhaseTotal* save = FindPhase(*b, "save-downtime");
  ASSERT_NE(save, nullptr);
  EXPECT_EQ(save->straggler, "node3");
  EXPECT_GT(save->total, b->wall() / 2);
  EXPECT_GT(save->straggler_ns, b->wall() / 2);
  // The slowdown lives in the save, not in the commit exchange.
  EXPECT_LT(b->PhaseNs("commit-wait"), save->total / 10);
}

// Fig. 4: under the optimized protocol with copy-on-write capture the
// coordinator broadcasts <continue> as soon as communication is down, so
// the op's completion is gated by the background write-out and
// commit-wait leaves the critical path entirely. The blocking protocol
// keeps it there.
TEST(CriticalPath, EarlyContinueRemovesCommitWaitFromCriticalPath) {
  auto run = [](coord::ProtocolVariant variant, bool cow) {
    ClusterConfig config;
    config.num_nodes = 2;
    // Slow disk: the write-out dominates the commit exchange by orders
    // of magnitude, as in the paper's testbed.
    config.node_template.disk_write_bytes_per_sec = 64 * 1024;
    Cluster c(config);
    os::PodId a = SpawnCounterPod(c, 0, "a");
    os::PodId b = SpawnCounterPod(c, 1, "b");
    c.sim().RunFor(10 * kMillisecond);
    coord::Coordinator::Options options;
    options.variant = variant;
    options.copy_on_write = cow;
    auto stats =
        c.RunCheckpoint({c.MemberFor(0, a), c.MemberFor(1, b)}, options);
    EXPECT_TRUE(stats.success);
    const auto& ring = c.sim().tracer().events();
    CausalGraph g = CausalGraph::Build(
        std::vector<TraceEvent>(ring.begin(), ring.end()));
    CriticalPathAnalyzer analyzer(g);
    auto breakdown = analyzer.AnalyzeOp(stats.op_id);
    EXPECT_TRUE(breakdown.has_value());
    return *breakdown;
  };

  OpBreakdown blocking = run(coord::ProtocolVariant::kBlocking, false);
  EXPECT_EQ(AttributedSum(blocking), blocking.wall());
  EXPECT_GT(blocking.PhaseNs("commit-wait"), 0u);
  EXPECT_EQ(blocking.PhaseNs("save-background"), 0u);

  OpBreakdown early = run(coord::ProtocolVariant::kOptimized, true);
  EXPECT_EQ(AttributedSum(early), early.wall());
  EXPECT_EQ(early.PhaseNs("commit-wait"), 0u);
  EXPECT_GT(early.PhaseNs("save-background"), 0u);
}

// Tiered restarts: the analyzer attributes every restored image to the
// tier it was actually read from, and the attribution survives the JSONL
// export round trip cruz_analyze consumes.
TEST(CriticalPath, TieredRestartAttributesRestoreSources) {
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId a = SpawnCounterPod(c, 0, "a");
  os::PodId b = SpawnCounterPod(c, 1, "b");
  c.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.tiered = true;
  c.fs().set_available(false);  // only the disk tiers can serve restores
  auto ckpt = c.RunGenerationCheckpoint(
      {c.MemberFor(0, a), c.MemberFor(1, b)}, options);
  ASSERT_TRUE(ckpt.stats.success);
  c.node(0).Fail();
  c.pods(1).DestroyPod(b);
  c.sim().RunFor(5 * kMillisecond);
  // Pod a lands on node3 (partner copy), pod b back on node2 (local).
  auto restart = c.RunGenerationRestart(
      {c.MemberFor(2, a), c.MemberFor(1, b)}, options);
  ASSERT_TRUE(restart.stats.success);

  obs::causal::ImportStats import_stats;
  CausalGraph g = CausalGraph::Build(obs::causal::ImportJsonl(
      c.sim().tracer().ExportJsonl(), &import_stats));
  CriticalPathAnalyzer analyzer(g);
  auto bd = analyzer.AnalyzeOp(restart.stats.op_id);
  ASSERT_TRUE(bd.has_value());
  EXPECT_EQ(bd->kind, "restart");
  ASSERT_EQ(bd->restore_sources.size(), 2u);
  EXPECT_EQ(bd->restore_sources[0].node, "node2");
  EXPECT_EQ(bd->restore_sources[0].source, "local");
  EXPECT_EQ(bd->restore_sources[1].node, "node3");
  EXPECT_EQ(bd->restore_sources[1].source, "partner");

  std::string report = CriticalPathAnalyzer::RenderReport({*bd}, g.stats());
  EXPECT_NE(report.find("restore-sources:"), std::string::npos);
  EXPECT_NE(report.find("node3=partner"), std::string::npos);
  std::string json = CriticalPathAnalyzer::RenderJson({*bd}, g.stats());
  EXPECT_NE(json.find("\"restore_sources\":[{\"node\":\"node2\""),
            std::string::npos);
}

// The determinism contract of the analyzer: the same seeded scenario
// yields a byte-identical report, and importing the exported JSONL back
// through ImportJsonl yields the same report as analyzing the live ring
// (the canonical (ts, node, seq) order erases the round trip).
TEST(CriticalPath, SameSeedAnalyzerReportsAreByteIdentical) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig config;
    config.seed = seed;
    config.num_nodes = 3;
    Cluster c(config);
    fault::FaultPlan plan(seed + 5);
    plan.ArmMessageLoss(0.2);
    c.ArmFaults(plan);
    std::vector<coord::Coordinator::Member> members;
    for (std::size_t n = 0; n < 3; ++n) {
      members.push_back(c.MemberFor(
          n, SpawnCounterPod(c, n, "p" + std::to_string(n))));
    }
    c.sim().RunFor(10 * kMillisecond);
    coord::Coordinator::Options options;
    options.retransmit_interval = 200 * kMillisecond;
    options.timeout = 60 * kSecond;
    c.RunCheckpoint(members, options);

    const auto& ring = c.sim().tracer().events();
    CausalGraph live = CausalGraph::Build(
        std::vector<TraceEvent>(ring.begin(), ring.end()));
    CriticalPathAnalyzer live_analyzer(live);
    std::string live_report = CriticalPathAnalyzer::RenderReport(
        live_analyzer.AnalyzeAll(), live.stats());

    obs::causal::ImportStats import_stats;
    CausalGraph imported = CausalGraph::Build(
        ImportJsonl(c.sim().tracer().ExportJsonl(), &import_stats));
    EXPECT_EQ(import_stats.skipped, 0u);
    EXPECT_EQ(import_stats.events, ring.size());
    CriticalPathAnalyzer imported_analyzer(imported);
    std::string imported_report = CriticalPathAnalyzer::RenderReport(
        imported_analyzer.AnalyzeAll(), imported.stats());
    EXPECT_EQ(live_report, imported_report);

    std::string json = CriticalPathAnalyzer::RenderJson(
        live_analyzer.AnalyzeAll(), live.stats());
    return live_report + "\n---\n" + json;
  };

  std::string first = run(1234);
  std::string second = run(1234);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("causal critical-path report"), std::string::npos);
  EXPECT_NE(first.find("save-downtime"), std::string::npos);
}

// Capture() keeps only events overlapping the pre-fault window, bounds
// the artifact size (oldest dropped first, marked truncated), and embeds
// the causal slice alongside the trigger metadata.
TEST(FlightRecorder, CaptureBoundsWindowAndJoinsEdges) {
  ClockedTracer t;
  t.now = 1000;  // ancient: falls out of the window
  t.tracer.Instant("tcp", "tcp.rto");
  t.now = 9000;
  t.tracer.Instant("coord", "coord.msg.send",
                   TraceAttrs{}
                       .Op(3)
                       .Agent("coordinator")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "3:checkpoint:10.0.0.99:1"));
  t.now = 9500;
  t.tracer.Instant("agent", "agent.msg.recv",
                   TraceAttrs{}
                       .Op(3)
                       .Agent("node1")
                       .Arg("type", "checkpoint")
                       .Arg("corr", "3:checkpoint:10.0.0.99:1"));

  FlightTrigger trigger;
  trigger.ts = 10000;
  trigger.op = 3;
  trigger.kind = "invariant-violation";
  trigger.detail = "comm-silence: segment delivered while filters up";
  trigger.repro = "cruzrepro1 seed=1 nodes=2";
  FlightRecorderOptions options;
  options.window = 2000;

  std::string record = FlightRecorder::Capture(t.Events(), trigger, options);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(record, doc, error)) << error;
  const JsonValue* window = doc.Find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->Find("begin_ns")->AsU64(), 8000u);
  EXPECT_EQ(window->Find("end_ns")->AsU64(), 10000u);
  EXPECT_EQ(window->Find("events")->AsU64(), 2u);
  EXPECT_FALSE(window->Find("truncated")->boolean);
  const JsonValue* trig = doc.Find("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->Find("kind")->text, "invariant-violation");
  EXPECT_EQ(trig->Find("repro")->text, "cruzrepro1 seed=1 nodes=2");
  const JsonValue* causal = doc.Find("causal");
  ASSERT_NE(causal, nullptr);
  EXPECT_EQ(causal->Find("stats")->Find("matched")->AsU64(), 1u);
  EXPECT_EQ(causal->Find("edges")->items.size(), 1u);

  // A hard cap drops the oldest events first and flags the artifact.
  options.max_events = 1;
  record = FlightRecorder::Capture(t.Events(), trigger, options);
  ASSERT_TRUE(ParseJson(record, doc, error)) << error;
  EXPECT_EQ(doc.Find("window")->Find("events")->AsU64(), 1u);
  EXPECT_TRUE(doc.Find("window")->Find("truncated")->boolean);
  ASSERT_EQ(doc.Find("events")->items.size(), 1u);
  EXPECT_EQ(doc.Find("events")->items[0].Find("name")->text,
            "agent.msg.recv");
}

// End to end through the explorer: an injected protocol bug trips the
// oracle, the run ships a flight recording whose trigger names the
// violation and embeds the repro string — and decoding that exact string
// replays the run to the same violation.
TEST(FlightRecorder, ExplorerViolationProducesReplayableRecording) {
  check::RunOptions options;
  options.mutation = check::Mutation::kDuplicateContinue;
  check::Explorer explorer(options);
  auto scenario = check::Scenario::Decode(
      "cruzrepro1 seed=4 nodes=2 wl=2 units=4000 op=0,10,0,0,0,0,0");
  ASSERT_TRUE(scenario.has_value());

  check::RunResult run = explorer.RunScenario(*scenario);
  ASSERT_FALSE(run.passed);
  ASSERT_FALSE(run.violations.empty());
  ASSERT_FALSE(run.trace_jsonl.empty());
  ASSERT_FALSE(run.flight_record.empty());

  // The recorded trace feeds the analyzer unchanged.
  CausalGraph g = CausalGraph::Build(ImportJsonl(run.trace_jsonl));
  EXPECT_EQ(g.stats().mis_joins, 0u);
  EXPECT_GT(g.stats().matched, 0u);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(run.flight_record, doc, error)) << error;
  const JsonValue* trigger = doc.Find("trigger");
  ASSERT_NE(trigger, nullptr);
  EXPECT_EQ(trigger->Find("kind")->text, "invariant-violation");
  EXPECT_NE(trigger->Find("detail")->text.find(
                run.violations.front().invariant),
            std::string::npos);
  EXPECT_GT(doc.Find("window")->Find("events")->AsU64(), 0u);
  EXPECT_EQ(doc.Find("causal")->Find("stats")->Find("mis_joins")->AsU64(),
            0u);

  // Replay from the artifact alone: the embedded repro string decodes to
  // the same scenario and fails the same invariant.
  std::string repro = trigger->Find("repro")->text;
  EXPECT_EQ(repro, scenario->Encode());
  auto replay = check::Scenario::Decode(repro);
  ASSERT_TRUE(replay.has_value());
  check::RunResult rerun = explorer.RunScenario(*replay);
  EXPECT_FALSE(rerun.passed);
  ASSERT_FALSE(rerun.violations.empty());
  EXPECT_EQ(rerun.violations.front().invariant,
            run.violations.front().invariant);
  EXPECT_EQ(rerun.flight_record, run.flight_record);
}

// Post-copy degradation attribution: every demand-fetch stall is traced
// as a migrate.postcopy.fetch span, and the analyzer's "postcopy-fetch"
// phase must account for the coordinator-reported degradation within 1%
// (the faulting process parks for the whole fetch, so spans never
// overlap and the tiling sums exactly). The "stop-copy" phase likewise
// reproduces the reported downtime.
TEST(CriticalPath, PostCopyFetchStallsMatchReportedDegradation) {
  ckpt::testing::RegisterScribbler();
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "scrib");
  c.pods(0).SpawnInPod(id, "harness.scribbler",
                       ckpt::testing::ScribblerArgs(21, 20000, 96));
  os::Process* scrib = c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, 1));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 512; ++i) {
    scrib->memory().InstallPage(ckpt::testing::kScribBallastPage + i, page);
  }
  c.sim().RunFor(5 * kMillisecond);
  ckpt::LiveMigrateOptions options;
  options.hot_window = 200 * kMicrosecond;
  bool done = false;
  ckpt::LiveMigrateStats stats;
  ckpt::LiveMigrator::PostCopy(c.pods(0), c.pods(1), id, options,
                               [&](const ckpt::LiveMigrateStats& s) {
                                 stats = s;
                                 done = true;
                               });
  ASSERT_TRUE(
      c.sim().RunWhile([&] { return done; }, c.sim().Now() + 600 * kSecond));
  ASSERT_GT(stats.degradation, 0);
  ASSERT_GT(stats.pages_fetched_on_demand, 0u);

  const auto& ring = c.sim().tracer().events();
  CausalGraph g =
      CausalGraph::Build(std::vector<TraceEvent>(ring.begin(), ring.end()));
  CriticalPathAnalyzer analyzer(g);
  auto b = analyzer.AnalyzeOp(stats.op_id);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->success);
  EXPECT_EQ(b->kind, "post-copy");

  const PhaseTotal* fetch = FindPhase(*b, "postcopy-fetch");
  ASSERT_NE(fetch, nullptr);
  DurationNs diff = fetch->total > stats.degradation
                        ? fetch->total - stats.degradation
                        : stats.degradation - fetch->total;
  EXPECT_LE(diff * 100, stats.degradation)
      << "postcopy-fetch=" << fetch->total
      << " degradation=" << stats.degradation;

  const PhaseTotal* stop = FindPhase(*b, "stop-copy");
  ASSERT_NE(stop, nullptr);
  EXPECT_EQ(stop->total, stats.downtime);
}

}  // namespace
}  // namespace cruz
