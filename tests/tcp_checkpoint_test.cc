// Tests for TCP checkpoint-restart (paper §4.1 and the §5.1 correctness
// argument at the transport level): the two-sequence-number rewrite, packet
// boundary preservation, one-sided restore against a live peer, two-sided
// coordinated restore, and property tests of the Fig. 3 invariant
//     unack_nxt <= rcv_nxt <= snd_nxt
// at randomly chosen checkpoint instants.
#include <gtest/gtest.h>

#include "common/error.h"
#include "tcp/checkpoint_state.h"
#include "tcp/connection.h"
#include "tcp_harness.h"

namespace cruz::tcp {
namespace {

using testing::PatternBytes;
using testing::TcpPair;

TEST(TcpCheckpoint, SerializationRoundTrip) {
  TcpConnCheckpoint ck;
  ck.tuple.local = {net::Ipv4Address::Parse("10.0.0.1"), 4000};
  ck.tuple.remote = {net::Ipv4Address::Parse("10.0.0.2"), 5000};
  ck.state = TcpState::kEstablished;
  ck.iss = 100;
  ck.irs = 200;
  ck.snd_una = 150;
  ck.rcv_nxt = 250;
  ck.snd_wnd = 4096;
  ck.nagle_enabled = false;
  ck.cork_enabled = true;
  ck.cwnd_bytes = 2920;
  ck.ssthresh_bytes = 65535;
  ck.app_closed = true;
  ck.fin_acked = false;
  ck.send_packets = {PatternBytes(100, 1), PatternBytes(60, 2)};
  ck.recv_pending = PatternBytes(33, 3);

  ByteWriter w;
  ck.Serialize(w);
  ByteReader r(w.data());
  TcpConnCheckpoint d = TcpConnCheckpoint::Deserialize(r);
  EXPECT_EQ(d.tuple, ck.tuple);
  EXPECT_EQ(d.state, ck.state);
  EXPECT_EQ(d.snd_una, ck.snd_una);
  EXPECT_EQ(d.rcv_nxt, ck.rcv_nxt);
  EXPECT_EQ(d.snd_wnd, ck.snd_wnd);
  EXPECT_EQ(d.nagle_enabled, ck.nagle_enabled);
  EXPECT_EQ(d.cork_enabled, ck.cork_enabled);
  EXPECT_EQ(d.app_closed, ck.app_closed);
  EXPECT_EQ(d.fin_acked, ck.fin_acked);
  ASSERT_EQ(d.send_packets.size(), 2u);
  EXPECT_EQ(d.send_packets[0], ck.send_packets[0]);
  EXPECT_EQ(d.send_packets[1], ck.send_packets[1]);
  EXPECT_EQ(d.recv_pending, ck.recv_pending);
  EXPECT_EQ(d.TotalBytes(), 193u);
}

TEST(TcpCheckpoint, DeserializeRejectsBadState) {
  ByteWriter w;
  TcpConnCheckpoint{}.Serialize(w);
  Bytes data = w.Take();
  data[12] = 99;  // state byte (after 4+2+4+2 bytes of tuple)
  ByteReader r(data);
  EXPECT_THROW(TcpConnCheckpoint::Deserialize(r), cruz::CodecError);
}

TEST(TcpCheckpoint, ExportIsNonDestructive) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  Bytes msg = PatternBytes(5000);
  p.a->Send(msg);
  ASSERT_TRUE(p.sim.RunWhile([&] { return p.b->ReadableBytes() >= 5000; },
                             p.sim.Now() + kSecond));
  TcpConnCheckpoint ck = p.b->ExportCheckpoint();
  EXPECT_EQ(ck.recv_pending, msg);
  // The live connection still delivers everything after the export.
  Bytes out;
  EXPECT_EQ(p.b->Receive(out, 10000), 5000);
  EXPECT_EQ(out, msg);
}

TEST(TcpCheckpoint, RewriteReflectsEmptyBuffers) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  // Queue data while the peer cannot ACK: send buffer stays full.
  p.SetCommDisabled(false, true);
  p.a->Send(PatternBytes(10000));
  p.sim.RunFor(10 * kMillisecond);
  ASSERT_NE(p.a->snd_nxt(), p.a->snd_una());

  TcpConnCheckpoint ck = p.a->ExportCheckpoint();
  // Saved unack_nxt, with the send data carried as packets.
  EXPECT_EQ(ck.snd_una, p.a->snd_una());
  std::size_t packet_bytes = 0;
  for (const auto& pkt : ck.send_packets) packet_bytes += pkt.size();
  EXPECT_EQ(packet_bytes, 10000u);

  // A restored connection starts with snd_nxt == snd_una and replays.
  TcpPair q;
  q.cfg_ = TcpConfig{};
  q.SetCommDisabled(true, true);  // keep it quiet
  q.RestoreA(ck);
  EXPECT_EQ(q.a->snd_una(), ck.snd_una);
  EXPECT_GE(SeqDiff(ck.snd_una, q.a->snd_nxt()), 0u);
}

TEST(TcpCheckpoint, PacketBoundariesPreservedAcrossRestore) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.SetCommDisabled(false, true);
  // Two odd-sized writes with Nagle off: distinctive packet boundaries.
  p.a->SetNagle(false);
  p.a->Send(PatternBytes(700, 1));
  p.sim.RunFor(kMillisecond);
  p.a->Send(PatternBytes(300, 2));
  p.sim.RunFor(10 * kMillisecond);
  TcpConnCheckpoint ck = p.a->ExportCheckpoint();
  ASSERT_EQ(ck.send_packets.size(), 2u);
  EXPECT_EQ(ck.send_packets[0].size(), 700u);
  EXPECT_EQ(ck.send_packets[1].size(), 300u);

  // Restore and confirm the replayed segments keep the same boundaries.
  TcpPair q;
  q.cfg_ = TcpConfig{};
  std::vector<std::size_t> sizes;
  q.RestoreA(ck);
  TcpConnCheckpoint ck2 = q.a->ExportCheckpoint();
  ASSERT_EQ(ck2.send_packets.size(), 2u);
  EXPECT_EQ(ck2.send_packets[0].size(), 700u);
  EXPECT_EQ(ck2.send_packets[1].size(), 300u);
  (void)sizes;
}

// One-sided checkpoint-restart of B in the middle of a bulk transfer, while
// A (the remote peer, not under checkpoint control) keeps running — the
// migration scenario of §4.2. The byte stream must arrive exactly once, in
// order, with no loss, combining B's alternate-buffer data (recv_pending)
// with post-restore receives.
TEST(TcpCheckpoint, OneSidedRestoreMidStream) {
  TcpPair p(/*seed=*/11);
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());

  const std::size_t total = 300 * 1000;
  Bytes data = PatternBytes(total, 42);
  std::size_t sent = 0;
  Bytes received;

  auto pump_a = [&] {
    while (sent < total) {
      SysResult r = p.a->Send(
          ByteSpan(data.data() + sent,
                   std::min<std::size_t>(8192, total - sent)));
      if (r <= 0) break;
      sent += static_cast<std::size_t>(r);
    }
  };
  auto drain_b = [&] {
    Bytes chunk;
    while (p.b && p.b->Receive(chunk, 65536) > 0) {
      received.insert(received.end(), chunk.begin(), chunk.end());
      chunk.clear();
    }
  };

  // Run until roughly a third of the stream has been consumed.
  p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= total / 3;
      },
      p.sim.Now() + 60 * kSecond);
  ASSERT_GE(received.size(), total / 3);

  // Let more data pile into B's receive buffer without draining, so the
  // checkpoint contains pending receive data.
  p.sim.RunFor(2 * kMillisecond);

  // --- checkpoint B: disable comm, export, destroy ---
  p.SetCommDisabled(false, true);
  TcpConnCheckpoint ck = p.b->ExportCheckpoint();
  p.b.reset();

  // Downtime: A retransmits into the void and backs off.
  p.sim.RunFor(500 * kMillisecond);

  // --- restart B (e.g. on another machine): restore, then enable comm ---
  p.RestoreB(ck);
  // recv_pending is what the restore engine feeds the app through the
  // alternate buffer: it is the next chunk of the stream.
  received.insert(received.end(), ck.recv_pending.begin(),
                  ck.recv_pending.end());
  p.SetCommDisabled(false, false);

  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= total;
      },
      p.sim.Now() + 300 * kSecond));
  EXPECT_EQ(received.size(), total);
  EXPECT_EQ(received, data);
}

// Two-sided coordinated checkpoint-restart mid-stream: both endpoints are
// frozen (comm disabled first, per the Fig. 2 agent protocol), exported,
// destroyed, restored, and only then is communication re-enabled.
TEST(TcpCheckpoint, CoordinatedRestoreBothSides) {
  TcpPair p(/*seed=*/17);
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());

  const std::size_t total = 200 * 1000;
  Bytes data = PatternBytes(total, 7);
  std::size_t sent = 0;
  Bytes received;
  auto pump_a = [&] {
    while (p.a && sent < total) {
      SysResult r = p.a->Send(
          ByteSpan(data.data() + sent,
                   std::min<std::size_t>(8192, total - sent)));
      if (r <= 0) break;
      sent += static_cast<std::size_t>(r);
    }
  };
  auto drain_b = [&] {
    Bytes chunk;
    while (p.b && p.b->Receive(chunk, 65536) > 0) {
      received.insert(received.end(), chunk.begin(), chunk.end());
      chunk.clear();
    }
  };

  p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= total / 2;
      },
      p.sim.Now() + 60 * kSecond);
  ASSERT_GE(received.size(), total / 2);

  // Coordinated checkpoint: disable all communication first (in-flight
  // packets are dropped), then save both endpoint states independently.
  p.SetCommDisabled(true, true);
  p.SetCommDisabled(false, true);
  TcpConnCheckpoint ck_a = p.a->ExportCheckpoint();
  TcpConnCheckpoint ck_b = p.b->ExportCheckpoint();

  // The Fig. 3 invariant must hold in the saved global state:
  //   a.snd_una <= b.rcv_nxt  and  b.snd_una <= a.rcv_nxt
  EXPECT_TRUE(SeqLe(ck_a.snd_una, ck_b.rcv_nxt));
  EXPECT_TRUE(SeqLe(ck_b.snd_una, ck_a.rcv_nxt));

  // Destroy both (machines fail / job preempted).
  p.a.reset();
  p.b.reset();
  p.sim.RunFor(3 * kSecond);

  // Coordinated restart: restore both while communication is still
  // disabled, then re-enable everywhere.
  p.RestoreA(ck_a);
  p.RestoreB(ck_b);
  received.insert(received.end(), ck_b.recv_pending.begin(),
                  ck_b.recv_pending.end());
  // A's recv_pending belongs to the (unused) B->A direction.
  p.SetCommDisabled(true, false);
  p.SetCommDisabled(false, false);

  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= total;
      },
      p.sim.Now() + 600 * kSecond));
  EXPECT_EQ(received, data);
}

// Restore with a pending close: B checkpointed after calling Close() but
// before the FIN was acknowledged. After restore the FIN must be re-issued
// and the shutdown completes.
TEST(TcpCheckpoint, RestoreReissuesPendingFin) {
  TcpPair p;
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.SetCommDisabled(false, true);  // A never sees the FIN
  p.b->Close();
  p.sim.RunFor(10 * kMillisecond);
  ASSERT_EQ(p.b->state(), TcpState::kFinWait1);
  TcpConnCheckpoint ck = p.b->ExportCheckpoint();
  EXPECT_TRUE(ck.app_closed);
  EXPECT_FALSE(ck.fin_acked);
  p.b.reset();

  p.RestoreB(ck);
  p.SetCommDisabled(false, false);
  ASSERT_TRUE(p.sim.RunWhile(
      [&] { return p.a->state() == TcpState::kCloseWait; },
      p.sim.Now() + 60 * kSecond));
  Bytes out;
  EXPECT_EQ(p.a->Receive(out, 10), 0);  // EOF observed at the live peer
}

// Property test over random checkpoint instants: checkpoint B at an
// arbitrary moment during a lossy bidirectional transfer, restore it, and
// require exactly-once in-order delivery of the full stream plus the saved
// invariant. Parameterized across seeds (different timings, loss patterns,
// and checkpoint instants).
class CheckpointInstantProperty : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointInstantProperty, StreamSurvivesRestore) {
  const int seed = GetParam();
  TcpPair p(static_cast<std::uint64_t>(seed));
  p.Connect();
  ASSERT_TRUE(p.RunUntilEstablished());
  p.set_loss(0.02);

  Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);
  const std::size_t total = 60 * 1000 + rng.NextBelow(100000);
  Bytes data = PatternBytes(total, static_cast<std::uint64_t>(seed));
  std::size_t sent = 0;
  Bytes received;
  auto pump_a = [&] {
    while (sent < total) {
      SysResult r = p.a->Send(
          ByteSpan(data.data() + sent,
                   std::min<std::size_t>(4096, total - sent)));
      if (r <= 0) break;
      sent += static_cast<std::size_t>(r);
    }
  };
  auto drain_b = [&] {
    Bytes chunk;
    while (p.b && p.b->Receive(chunk, 65536) > 0) {
      received.insert(received.end(), chunk.begin(), chunk.end());
      chunk.clear();
    }
  };

  // Run to a random progress point in [10%, 80%].
  std::size_t threshold =
      total / 10 + rng.NextBelow(total * 7 / 10);
  p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= threshold;
      },
      p.sim.Now() + 300 * kSecond);

  // Random extra delay so the checkpoint lands between app-level reads.
  p.sim.RunFor(rng.NextBelow(5 * kMillisecond));

  p.SetCommDisabled(false, true);
  TcpConnCheckpoint ck_b = p.b->ExportCheckpoint();
  TcpConnCheckpoint ck_a = p.a->ExportCheckpoint();  // peer view (live)

  // Fig. 3 invariant, checked from the saved B state against live A:
  // B's saved rcv_nxt must be between A's unacked pointer and A's snd_nxt.
  EXPECT_TRUE(SeqLe(ck_a.snd_una, ck_b.rcv_nxt));
  EXPECT_TRUE(SeqLe(ck_b.rcv_nxt, p.a->snd_nxt()));

  p.b.reset();
  p.sim.RunFor(rng.NextBelow(2 * kSecond));

  p.RestoreB(ck_b);
  received.insert(received.end(), ck_b.recv_pending.begin(),
                  ck_b.recv_pending.end());
  p.SetCommDisabled(false, false);

  ASSERT_TRUE(p.sim.RunWhile(
      [&] {
        pump_a();
        drain_b();
        return received.size() >= total;
      },
      p.sim.Now() + 900 * kSecond))
      << "seed=" << seed << " received=" << received.size() << "/" << total;
  EXPECT_EQ(received.size(), total);
  EXPECT_EQ(received, data) << "stream corrupted for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointInstantProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace cruz::tcp
