// Request-level latency pipeline: HDR histogram correctness, windowed
// percentile timelines, and SLO violation attribution through
// checkpoint events.
//
// The scenario tests drive the real stack end to end: a threaded kv
// server under open-loop load from LoadGen, a coordinated checkpoint in
// the middle of the run, SloMonitor emitting `slo.violation` instants
// onto the shared trace, and BuildSloReport joining those windows
// against the causal critical path. A stop-the-world checkpoint MUST
// produce attributed violations; the same run with copy-on-write must
// produce none — that differential is the paper's §5.2 argument
// restated at the request-latency level.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "apps/kvstore.h"
#include "common/rng.h"
#include "cruz/cluster.h"
#include "gtest/gtest.h"
#include "load/loadgen.h"
#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"
#include "obs/causal/slo_report.h"
#include "obs/causal/trace_io.h"
#include "obs/latency/histogram.h"
#include "obs/latency/slo.h"
#include "obs/latency/windowed.h"

namespace cruz {
namespace {

using obs::LatencyHistogram;
using obs::SloMonitor;
using obs::SloObjective;
using obs::WindowedRecorder;
using obs::WindowStats;
using obs::causal::CausalGraph;
using obs::causal::CriticalPathAnalyzer;
using obs::causal::OpBreakdown;

// ---------------------------------------------------------------------------
// LatencyHistogram: differential against exact sorted-sample percentiles.
// ---------------------------------------------------------------------------

// The log-linear layout promises ~3 significant digits: the reported
// percentile is the upper bound of the bucket holding the exact
// rank-ceil(q*n) sample, so it is >= the exact value and within a
// relative 1/512 of it (1/2^(sub_bucket_bits-1)).
TEST(LatencyHistogram, DifferentialAgainstExactPercentiles) {
  constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    LatencyHistogram hist;
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 10000; ++i) {
      // Log-uniform over ~12 orders of magnitude: exercises the exact
      // sub-1024 range, the linear sub-buckets, and the wide tail.
      std::uint64_t v = rng.NextU64() >> rng.NextBelow(40);
      samples.push_back(v);
      hist.Record(v);
    }
    std::sort(samples.begin(), samples.end());
    ASSERT_EQ(hist.count(), samples.size());
    EXPECT_EQ(hist.min(), samples.front());
    EXPECT_EQ(hist.max(), samples.back());
    EXPECT_EQ(hist.Percentile(1.0), samples.back());
    for (double q : kQuantiles) {
      auto rank = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(samples.size())));
      std::uint64_t exact = samples[rank - 1];
      std::uint64_t got = hist.Percentile(q);
      EXPECT_GE(got, exact) << "seed " << seed << " q " << q;
      EXPECT_LE(got, exact + exact / 512 + 1)
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(LatencyHistogram, IndexRoundTripAndExactLowRange) {
  // Values below the sub-bucket count are tracked exactly.
  for (std::uint64_t v : {0ull, 1ull, 17ull, 1023ull}) {
    EXPECT_EQ(LatencyHistogram::UpperBoundFor(LatencyHistogram::IndexFor(v)),
              v);
  }
  // Every value is <= the upper bound of its bucket, and above the
  // previous bucket's upper bound.
  for (std::uint64_t v :
       {1024ull, 1025ull, 4095ull, 65537ull, (1ull << 40) + 12345}) {
    std::size_t index = LatencyHistogram::IndexFor(v);
    EXPECT_LE(v, LatencyHistogram::UpperBoundFor(index));
    EXPECT_GT(v, LatencyHistogram::UpperBoundFor(index - 1));
  }
}

TEST(LatencyHistogram, MergeMatchesSingleHistogram) {
  Rng rng(77);
  LatencyHistogram whole;
  LatencyHistogram parts[4];
  for (int i = 0; i < 4000; ++i) {
    std::uint64_t v = rng.NextU64() >> rng.NextBelow(32);
    whole.Record(v);
    parts[i % 4].Record(v);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  for (double q : {0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.Percentile(q), whole.Percentile(q)) << q;
  }
}

// ---------------------------------------------------------------------------
// WindowedRecorder: dense timeline, gap windows, rotation callback.
// ---------------------------------------------------------------------------

TEST(WindowedRecorder, BuildsDenseTimelineWithGapWindows) {
  WindowedRecorder rec(1000, 100);
  std::vector<std::uint64_t> rotated;
  rec.SetWindowCallback(
      [&](const WindowStats& w, const LatencyHistogram& h) {
        rotated.push_back(w.index);
        EXPECT_EQ(w.count, h.count());
      });
  rec.Record(1050, 10);
  rec.Record(1150, 20);
  rec.Record(1199, 30);
  rec.Record(1450, 40);  // skips windows 2 and 3 entirely
  rec.Finalize();
  ASSERT_EQ(rec.windows().size(), 5u);
  const std::vector<WindowStats>& w = rec.windows();
  EXPECT_EQ(w[0].count, 1u);
  EXPECT_EQ(w[1].count, 2u);
  EXPECT_EQ(w[2].count, 0u);  // gap windows materialized, not skipped
  EXPECT_EQ(w[3].count, 0u);
  EXPECT_EQ(w[4].count, 1u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i].index, i);
    EXPECT_EQ(w[i].begin, 1000 + 100 * i);
    EXPECT_EQ(w[i].end, 1100 + 100 * i);
  }
  // Sub-1024 latencies are exact, so the percentiles are too.
  EXPECT_EQ(w[1].p50, 20u);
  EXPECT_EQ(w[1].max, 30u);
  EXPECT_EQ(rec.total().count(), 4u);
  EXPECT_EQ(rec.total().max(), 40u);
  EXPECT_EQ(rec.late_samples(), 0u);
  EXPECT_EQ(rotated, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(SloMonitor, EmitsViolationInstantsOntoTheTrace) {
  obs::Tracer tracer;
  TimeNs now = 0;
  tracer.SetClock([&] { return now; });
  SloMonitor monitor(&tracer, {SloObjective{"p99<25ns", 0.99, 25}});

  WindowedRecorder rec(0, 100);
  rec.SetWindowCallback(
      [&](const WindowStats& w, const LatencyHistogram& h) {
        monitor.OnWindow(w, h);
      });
  rec.Record(10, 10);   // window 0: compliant
  now = 150;
  rec.Record(150, 90);  // window 1: p99 = 90 > 25
  now = 450;
  rec.Record(450, 5);   // rotates 1 (violation) and gaps 2, 3 (empty ->
                        // compliant by definition)
  rec.Finalize();

  ASSERT_EQ(monitor.violations().size(), 1u);
  const obs::SloViolation& v = monitor.violations()[0];
  EXPECT_EQ(v.window_index, 1u);
  EXPECT_EQ(v.begin, 100u);
  EXPECT_EQ(v.end, 200u);
  EXPECT_EQ(v.observed_ns, 90u);
  EXPECT_EQ(v.count, 1u);
  EXPECT_EQ(monitor.windows_evaluated(), 5u);
  EXPECT_EQ(monitor.RecoveryToSlo("p99<25ns"), 100u);

  bool found = false;
  for (const obs::TraceEvent& e : tracer.events()) {
    if (e.name != "slo.violation") continue;
    found = true;
    EXPECT_EQ(obs::causal::EventArg(e, "objective"), "p99<25ns");
    EXPECT_EQ(obs::causal::EventArg(e, "begin_ns"), "100");
    EXPECT_EQ(obs::causal::EventArg(e, "observed_ns"), "90");
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end: checkpoint under open-loop load.
// ---------------------------------------------------------------------------

struct SloRunResult {
  std::size_t violations = 0;
  std::size_t attributed = 0;
  std::string report;           // rendered in-process attribution report
  std::string trace_jsonl;      // full trace export (CLI-path fixture)
  std::uint64_t failures = 0;
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  bool crosscheck_ok = false;   // phases tile wall within 1% unattributed
  bool checkpoint_charged = false;  // >=1 violation joined to the ckpt op
};

SloRunResult RunCheckpointUnderLoad(bool copy_on_write) {
  apps::RegisterKvPrograms();
  load::RegisterLoadPrograms();
  SloRunResult result;

  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  c.sim().tracer().set_verbose(true);
  c.sim().tracer().SetSampling(8);  // kv.op decimated; the sink sees all

  os::PodId id = c.CreatePod(0, "kv");
  net::Ipv4Address ip = c.pods(0).Find(id)->ip;
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.kv_server",
                                      apps::KvServerArgs(5432, true));
  os::Process* server =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  // Ballast sizes the image so a stop-the-world save stalls the pod for
  // ~100 ms — far past the 5 ms objective.
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < 2048; ++i) {
    server->memory().InstallPage(0x4000 + i, page);
  }
  c.sim().RunFor(5 * kMillisecond);

  load::LoadGenOptions lo;
  lo.server_ip = ip;
  lo.port = 5432;
  lo.connections = 48;
  lo.interarrival = 24 * kMillisecond;  // aggregate 2000 req/s
  lo.requests_per_conn = 60;            // ~1.44 s of load
  lo.base = c.sim().Now() + 200 * kMillisecond;
  // 250 ms windows hold ~500 samples each, and the p95 objective
  // tolerates ~25 slow samples per window: the handful of requests
  // whose packets land inside the sub-ms COW freeze and recover via a
  // TCP retransmission timeout stay under that budget, while the ~200
  // requests queued behind a 100 ms stop-the-world stall breach it
  // decisively. (p99 would flag even the COW run: ~6 RTO victims out
  // of ~500 samples is already past the 1% rank.)
  lo.window = 250 * kMillisecond;
  load::LoadGen lg(c.node(2).os(), lo);
  SloMonitor monitor(&c.sim().tracer(),
                     {SloObjective{"p95<5ms", 0.95, 5 * kMillisecond}});
  lg.recorder().SetWindowCallback(
      [&](const WindowStats& w, const LatencyHistogram& h) {
        monitor.OnWindow(w, h);
      });
  lg.Start();
  c.sim().RunUntil(lo.base + 600 * kMillisecond);

  coord::Coordinator::Options options;
  options.copy_on_write = copy_on_write;
  if (copy_on_write) options.variant = coord::ProtocolVariant::kOptimized;
  options.image_prefix = "/ckpt/slo";
  coord::Coordinator::OpStats stats =
      c.RunCheckpoint({c.MemberFor(0, id)}, options);
  EXPECT_TRUE(stats.success);

  c.sim().RunWhile([&] { return lg.Done(); },
                   c.sim().Now() + 120 * kSecond);
  lg.Finish();

  result.violations = monitor.violations().size();
  result.failures = lg.VerificationFailures();
  result.completed = lg.completed();
  result.expected = lg.expected();
  result.trace_jsonl = c.sim().tracer().ExportJsonl();

  const auto& ring = c.sim().tracer().events();
  CausalGraph graph = CausalGraph::Build(
      std::vector<obs::TraceEvent>(ring.begin(), ring.end()));
  CriticalPathAnalyzer analyzer(graph);
  std::vector<OpBreakdown> ops = analyzer.AnalyzeAll();
  // Attribution only means something if the phase tiling is sound:
  // phases must sum to the op wall exactly, with <= 1% unattributed.
  result.crosscheck_ok = !ops.empty();
  for (const OpBreakdown& op : ops) {
    DurationNs attributed_total = 0;
    for (const auto& p : op.phases) attributed_total += p.total;
    if (attributed_total != op.wall()) result.crosscheck_ok = false;
    if (op.unattributed * 100 > op.wall()) result.crosscheck_ok = false;
  }
  obs::causal::SloReport report =
      obs::causal::BuildSloReport(graph, ops);
  EXPECT_EQ(report.violations.size(), result.violations);
  result.attributed = report.attributed;
  result.report = obs::causal::RenderSloReport(report);
  for (const obs::causal::SloAttribution& a : report.violations) {
    if (a.op_kind == "checkpoint" && a.phase != "unattributed") {
      result.checkpoint_charged = true;
    }
  }
  return result;
}

const SloRunResult& StwResult() {
  static const SloRunResult r = RunCheckpointUnderLoad(false);
  return r;
}

// A stop-the-world checkpoint under load MUST breach the p95 objective,
// and every breached window must be explained by a concrete phase of
// the checkpoint op.
TEST(SloScenario, StopTheWorldCheckpointViolatesAndIsAttributed) {
  const SloRunResult& r = StwResult();
  EXPECT_GE(r.violations, 1u);
  EXPECT_EQ(r.attributed, r.violations);  // zero unattributed windows
  EXPECT_TRUE(r.checkpoint_charged);
  EXPECT_TRUE(r.crosscheck_ok);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(r.completed, r.expected);
}

// Copy-on-write keeps the pod running through the save: the same load,
// seed, and image must breach nothing (and strictly fewer windows than
// stop-the-world, which is the whole point of §5.2).
TEST(SloScenario, CopyOnWriteCheckpointStaysWithinSlo) {
  SloRunResult cow = RunCheckpointUnderLoad(true);
  EXPECT_EQ(cow.violations, 0u) << cow.report;
  EXPECT_LT(cow.violations, StwResult().violations);
  EXPECT_TRUE(cow.crosscheck_ok);
  EXPECT_EQ(cow.failures, 0u);
  EXPECT_EQ(cow.completed, cow.expected);
}

// Same seed -> byte-identical --slo report, both for the in-process
// join and through the ExportJsonl -> ImportJsonl CLI path.
TEST(SloScenario, SameSeedReportIsByteIdentical) {
  const SloRunResult& first = StwResult();
  SloRunResult second = RunCheckpointUnderLoad(false);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.trace_jsonl, second.trace_jsonl);

  obs::causal::ImportStats istats;
  std::vector<obs::TraceEvent> events =
      obs::causal::ImportJsonl(first.trace_jsonl, &istats);
  EXPECT_EQ(istats.skipped, 0u);
  CausalGraph graph = CausalGraph::Build(std::move(events));
  CriticalPathAnalyzer analyzer(graph);
  obs::causal::SloReport report =
      obs::causal::BuildSloReport(graph, analyzer.AnalyzeAll());
  EXPECT_EQ(obs::causal::RenderSloReport(report), first.report);
}

}  // namespace
}  // namespace cruz
