// Mode-differential live-migration harness.
//
// The idea: a migration mode is correct iff it is *invisible* to the
// application. To test that, the harness runs the same deterministic
// workload under each MigrateMode and demands bit-identical outcomes.
//
// The workload is "harness.scribbler": a program that performs exactly
// `iterations` pseudo-random page writes (page, slot, and value all
// derived from a seed and the iteration counter), maintains a running
// checksum, then parks forever. Every write is a pure function of
// (seed, iteration), and each Step orders its accesses so that any
// demand-paging fault lands *before* the step's first side effect — so
// the final memory image after iteration K is one exact artifact no
// matter how the run was interleaved with stops, restores, or post-copy
// stalls. The harness recomputes that artifact in plain C++ (via a
// scratch os::Memory driven by the same write sequence) and compares
// the migrated pod's address space against it page by page.
//
// RunScribblerMigration() is the per-(seed, mode) building block;
// tests/live_migrate_modes_test.cc sweeps it over >= 24 seeds x 4 modes
// and asserts the cross-mode invariants (identical images, downtime
// ordering, page accounting).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "apps/programs.h"
#include "ckpt/live_migrate.h"
#include "common/bytes.h"
#include "common/units.h"
#include "cruz/cluster.h"
#include "os/memory.h"
#include "os/program.h"

namespace cruz::ckpt::testing {

// Memory layout of the scribbler (all byte addresses):
//   kStatusAddr + 0 : iterations completed (u64)
//   kStatusAddr + 8 : running checksum (u64)
//   pool            : kScribPoolPage .. kScribPoolPage + pool_pages
//   ballast         : kScribBallastPage .. + ballast_pages (0x42-filled,
//                     installed by the harness, never written again)
inline constexpr std::uint64_t kScribPoolPage = 0x400;
inline constexpr std::uint64_t kScribBallastPage = 0x4000;
// Where Os::Spawn writes the args blob (kArgsAddr in os.cc).
inline constexpr std::uint64_t kScribArgsAddr = 0x1000;

inline std::uint64_t ScribMix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// The one write of iteration `i`: a u64 `value` at u64-slot `slot` of
// pool page `page`. Shared by the program and the reference model so
// they cannot drift apart.
struct ScribWrite {
  std::uint64_t page = 0;  // 0 .. pool_pages-1 (relative to the pool)
  std::uint64_t slot = 0;  // 0 .. kPageSize/8 - 1
  std::uint64_t value = 0;
};

inline ScribWrite ScribWriteAt(std::uint64_t seed, std::uint64_t i,
                               std::uint64_t pool_pages) {
  std::uint64_t h = ScribMix(seed ^ (i * 0xD1B54A32D192ED03ull));
  ScribWrite w;
  w.page = h % pool_pages;
  w.slot = (h >> 24) % (os::kPageSize / 8);
  w.value = ScribMix(h ^ 0xA0761D6478BD642Full);
  return w;
}

// Resumable state machine; all state in memory + registers (see
// os/program.h). Access order per step is fault-safe: the status-page
// read and the pool-page write are the only touches that can hit a
// missing page, and both happen before any write of that step lands.
class ScribblerProgram : public os::Program {
 public:
  void Step(os::ProcessCtx& ctx) override {
    if (ctx.Pc() == 0) {
      cruz::Bytes args = ctx.Mem().ReadBytes(ctx.Reg(1), ctx.Reg(2));
      cruz::ByteReader r(args);
      ctx.Reg(3) = r.GetU64();  // seed
      ctx.Reg(4) = r.GetU64();  // iterations
      ctx.Reg(5) = r.GetU64();  // pool pages
      ctx.Pc() = 1;
      return;
    }
    std::uint64_t done = ctx.Mem().ReadU64(apps::kStatusAddr);
    if (done >= ctx.Reg(4)) {
      ctx.Sleep(10 * kSecond);  // finished: park, state frozen
      return;
    }
    std::uint64_t checksum = ctx.Mem().ReadU64(apps::kStatusAddr + 8);
    ScribWrite w = ScribWriteAt(ctx.Reg(3), done, ctx.Reg(5));
    ctx.Mem().WriteU64(
        (kScribPoolPage + w.page) * os::kPageSize + w.slot * 8, w.value);
    ctx.Mem().WriteU64(apps::kStatusAddr + 8, ScribMix(checksum ^ w.value));
    ctx.Mem().WriteU64(apps::kStatusAddr, done + 1);
    ctx.ChargeCpu(5 * kMicrosecond);
  }
};

inline void RegisterScribbler() {
  static const bool once = [] {
    os::ProgramRegistry::Instance().Register(
        "harness.scribbler", [] { return std::make_unique<ScribblerProgram>(); });
    return true;
  }();
  (void)once;
}

inline cruz::Bytes ScribblerArgs(std::uint64_t seed, std::uint64_t iterations,
                                 std::uint64_t pool_pages) {
  cruz::ByteWriter w;
  w.PutU64(seed);
  w.PutU64(iterations);
  w.PutU64(pool_pages);
  return w.Take();
}

// Per-seed workload shape, drawn so that the scribbler is still writing
// for the whole span of every mode's migration (pool >= 48 pages keeps a
// pre-copy round's dirty set above the stop threshold; iterations * 5us
// comfortably exceeds start + the slowest stop-and-copy transfer).
struct ScribProfile {
  std::uint64_t scribble_seed = 0;
  std::uint64_t iterations = 20000;
  std::uint64_t pool_pages = 64;    // 48 .. 96
  std::uint64_t ballast_pages = 512;  // 256 .. 768
  TimeNs migrate_at = 5 * kMillisecond;  // 2 .. 10 ms
};

inline ScribProfile ProfileFromSeed(std::uint64_t seed) {
  ScribProfile p;
  p.scribble_seed = ScribMix(seed);
  p.pool_pages = 48 + ScribMix(seed ^ 1) % 49;
  p.ballast_pages = 256 + ScribMix(seed ^ 2) % 513;
  p.migrate_at = static_cast<TimeNs>(2 * kMillisecond +
                                     ScribMix(seed ^ 3) % (8 * kMillisecond));
  return p;
}

// A normalized memory image: present, non-zero pages only. Absent pages
// read as zeros, and capture paths may drop all-zero pages, so zero vs
// absent is not an application-visible distinction.
using PageImage = std::map<std::uint64_t, os::Memory::Page>;

inline PageImage NormalizedImage(const os::Memory& mem) {
  PageImage out;
  for (const auto& [index, page] : mem.pages()) {
    bool all_zero = true;
    for (std::uint8_t b : *page) {
      if (b != 0) {
        all_zero = false;
        break;
      }
    }
    if (!all_zero) out[index] = *page;
  }
  return out;
}

// The reference model: replays the exact write sequence into a scratch
// address space. What the pod's memory must equal after `iterations`,
// under any mode, any interleaving, any number of benign duplicates.
struct ScribExpectation {
  PageImage image;
  std::uint64_t checksum = 0;
};

inline ScribExpectation ExpectedScribblerState(const ScribProfile& p,
                                               cruz::ByteSpan args) {
  os::Memory model;
  cruz::Bytes ballast(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < p.ballast_pages; ++i) {
    model.InstallPage(kScribBallastPage + i, ballast);
  }
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < p.iterations; ++i) {
    ScribWrite w = ScribWriteAt(p.scribble_seed, i, p.pool_pages);
    model.WriteU64((kScribPoolPage + w.page) * os::kPageSize + w.slot * 8,
                   w.value);
    checksum = ScribMix(checksum ^ w.value);
  }
  model.WriteU64(apps::kStatusAddr, p.iterations);
  model.WriteU64(apps::kStatusAddr + 8, checksum);
  // The spawn wrote the args blob into the address space too; mirror it
  // at the same location so image comparison covers every page.
  model.WriteBytes(kScribArgsAddr, args);
  return ScribExpectation{NormalizedImage(model), checksum};
}

// Reads a u64 from a possibly demand-paging process; nullopt while the
// page is still in flight.
inline std::optional<std::uint64_t> TryReadU64(const os::Process& proc,
                                               std::uint64_t addr) {
  try {
    return proc.memory().ReadU64(addr);
  } catch (const os::PageFault&) {
    return std::nullopt;
  }
}

// Outcome of one (seed, mode) run, ready for cross-mode comparison.
struct ModeRun {
  bool migrated = false;    // done callback fired
  bool completed = false;   // scribbler reached `iterations` on the target
  bool source_empty = true;  // pod gone from the source node
  LiveMigrateStats stats;
  PageImage image;          // normalized final address space on the target
  std::uint64_t checksum = 0;
  std::uint64_t count = 0;
};

// Runs one migration mode over the seed's workload and collects the
// final state. Everything before the MigrateWithMode call is a pure
// function of `profile`, so two runs with different modes diverge only
// in the migration machinery itself.
inline ModeRun RunScribblerMigration(const ScribProfile& profile,
                                     MigrateMode mode,
                                     const LiveMigrateOptions& options) {
  RegisterScribbler();
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  cruz::Bytes args =
      ScribblerArgs(profile.scribble_seed, profile.iterations,
                    profile.pool_pages);
  os::PodId id = c.CreatePod(0, "scrib");
  os::Pid vpid = c.pods(0).SpawnInPod(id, "harness.scribbler", args);
  os::Process* src =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes ballast(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < profile.ballast_pages; ++i) {
    src->memory().InstallPage(kScribBallastPage + i, ballast);
  }
  c.sim().RunFor(profile.migrate_at);

  ModeRun run;
  bool done = false;
  LiveMigrator::MigrateWithMode(c.pods(0), c.pods(1), id, mode, options,
                                [&](const LiveMigrateStats& s) {
                                  run.stats = s;
                                  done = true;
                                });
  if (!c.sim().RunWhile([&] { return done; }, c.sim().Now() + 600 * kSecond)) {
    return run;
  }
  run.migrated = true;
  run.source_empty = c.pods(0).Find(id) == nullptr;

  os::Pid real = c.pods(1).ToRealPid(run.stats.pod, vpid);
  os::Process* proc = c.node(1).os().FindProcess(real);
  if (proc == nullptr) return run;
  run.completed = c.sim().RunWhile(
      [&] {
        std::optional<std::uint64_t> n = TryReadU64(*proc, apps::kStatusAddr);
        return n.has_value() && *n >= profile.iterations;
      },
      c.sim().Now() + 600 * kSecond);
  if (!run.completed) return run;
  run.count = proc->memory().ReadU64(apps::kStatusAddr);
  run.checksum = proc->memory().ReadU64(apps::kStatusAddr + 8);
  run.image = NormalizedImage(proc->memory());
  return run;
}

}  // namespace cruz::ckpt::testing
