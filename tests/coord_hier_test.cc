// Hierarchical coordinator robustness (DESIGN.md §13): sub-coordinator
// crash recovery, epoch fencing across root incarnations with live subs,
// the lying-middle-tier sabotage the gen-commit oracle exists to catch
// (see check_oracle_test.cc for the oracle side), and roster
// fragmentation across the Ethernet MTU.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/programs.h"
#include "coord/agent.h"
#include "coord/message.h"
#include "cruz/cluster.h"
#include "fault/fault.h"

namespace cruz {
namespace {

constexpr std::uint8_t kCheckpointByte =
    static_cast<std::uint8_t>(coord::MsgType::kCheckpoint);

os::PodId SpawnCounterPod(Cluster& c, std::size_t node,
                          const std::string& name) {
  os::PodId id = c.CreatePod(node, name);
  c.pods(node).SpawnInPod(id, "cruz.counter", apps::CounterArgs(1u << 30));
  return id;
}

bool PodProcessLive(Cluster& c, std::size_t node, os::PodId pod) {
  os::Pid real = c.pods(node).ToRealPid(pod, 1);
  if (real == os::kNoPid) return false;
  os::Process* proc = c.node(node).os().FindProcess(real);
  return proc != nullptr && proc->state() == os::ProcessState::kLive;
}

std::vector<coord::Coordinator::Member> SpawnMembers(
    Cluster& c, std::size_t n, std::vector<os::PodId>* pods) {
  std::vector<coord::Coordinator::Member> members;
  for (std::size_t i = 0; i < n; ++i) {
    os::PodId pod = SpawnCounterPod(c, i, "p" + std::to_string(i));
    pods->push_back(pod);
    members.push_back(c.MemberFor(i, pod));
  }
  c.sim().RunFor(10 * kMillisecond);
  return members;
}

// A sub-coordinator that dies mid-checkpoint must not wedge the op or
// leak images: the root gives up on the silent shard and aborts (fencing
// every agent directly, so even the dead sub's shard resumes), and the
// restarted sub's journal recovery re-fences and re-reaps. Zero orphan
// bytes on any storage tier, and the cluster checkpoints cleanly again.
TEST(CoordHier, SubCrashMidCheckpointAbortsCleanlyWithoutOrphans) {
  ClusterConfig config;
  config.num_nodes = 6;
  Cluster c(config);
  std::vector<os::PodId> pods;
  auto members = SpawnMembers(c, 6, &pods);

  coord::Coordinator::Options options;
  options.fan_out = 3;  // shards: head node1 (0-2), head node4 (3-5)
  options.tiered = true;
  options.image_prefix = "/ckpt/subcrash";
  options.retransmit_interval = 500 * kMillisecond;
  options.max_retransmit_rounds = 3;

  bool finished = false;
  coord::Coordinator::OpStats stats;
  c.coordinator().Checkpoint(members, options, [&](const auto& s) {
    finished = true;
    stats = s;
  });
  // The second shard's sub-coordinator dies after forwarding to its
  // agents (their saves are in flight) but before aggregating <done>s.
  c.sim().Schedule(1 * kMillisecond,
                   [&] { c.shard_coordinator(3).Crash(); });
  c.sim().RunFor(30 * kSecond);

  ASSERT_TRUE(finished);
  EXPECT_FALSE(stats.success);
  EXPECT_FALSE(stats.abort_reason.empty());
  // The direct agent fencing in AbortOp resumed every pod, including the
  // crashed sub's shard.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(PodProcessLive(c, i, pods[i])) << "pod " << i;
  }
  // No orphan images on any tier: shared FS, local/partner disks, or
  // pending background flushes.
  EXPECT_TRUE(c.fs().List("/ckpt/subcrash/").empty());
  EXPECT_EQ(c.tiered().BytesUnderPrefix("/ckpt/subcrash/"), 0u);
  EXPECT_EQ(c.tiered().PendingFlushCount(), 0u);

  // The restarted sub replays its intent journal (abort + reap) and the
  // cluster is whole: the next hierarchical checkpoint commits.
  c.shard_coordinator(3).Reset();
  c.sim().RunFor(100 * kMillisecond);
  EXPECT_TRUE(c.fs().List("/ckpt/subcrash/").empty());
  auto retry = c.RunCheckpoint(members, options);
  EXPECT_TRUE(retry.success);
  EXPECT_EQ(retry.shard_count, 2u);
}

// Epoch fencing composes across the tree: a root that crashes mid-op and
// restarts resumes the fencing sequence, live sub-coordinators accept
// the new incarnation's higher epoch (superseding the stalled op), and a
// replayed stale-epoch shard request is silently dropped.
TEST(CoordHier, EpochFencingAcrossRootRestartWithLiveSubs) {
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster c(config);
  fault::FaultPlan plan(5);
  // Stall op 2: the 4th node's agent process dies on <checkpoint>, so
  // its shard can never aggregate a <shard-done>.
  plan.ArmAgentCrash("node4", kCheckpointByte);
  std::vector<os::PodId> pods;
  auto members = SpawnMembers(c, 4, &pods);

  coord::Coordinator::Options options;
  options.fan_out = 2;  // shards: head node1 (0-1), head node3 (2-3)
  options.retransmit_interval = 500 * kMillisecond;
  options.image_prefix = "/ckpt/fence";

  // Op 1 (epoch 1) succeeds: both subs have now observed epoch 1.
  auto first = c.RunCheckpoint(members, options);
  ASSERT_TRUE(first.success);
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_EQ(c.shard_coordinator(0).ops_served(), 1u);
  EXPECT_EQ(c.shard_coordinator(2).ops_served(), 1u);

  // Op 2 (epoch 2) stalls on the crashed agent; the root dies mid-op.
  c.ArmFaults(plan);
  bool finished = false;
  c.coordinator().Checkpoint(members, options,
                             [&](const auto&) { finished = true; });
  c.sim().RunFor(1 * kSecond);
  ASSERT_FALSE(finished);
  c.RestartCoordinator();
  EXPECT_TRUE(c.coordinator().recovery().had_incomplete);
  EXPECT_EQ(c.coordinator().recovery().epoch, 2u);
  EXPECT_EQ(c.coordinator().epoch(), 2u);  // fencing sequence resumes

  // Heal the crashed agent and run op 3 (epoch 3): the live subs accept
  // the higher epoch — superseding any shard state left from op 2 — and
  // the op commits.
  c.agent(3).Reset();
  c.sim().RunFor(100 * kMillisecond);
  auto third = c.RunCheckpoint(members, options);
  EXPECT_TRUE(third.success);
  EXPECT_EQ(third.epoch, 3u);
  EXPECT_EQ(c.shard_coordinator(0).ops_served(), 2u);

  // A replayed stale shard request (epoch 1, from a long-dead
  // incarnation) must be fenced: the sub stays idle and its shard's pod
  // keeps running.
  coord::CoordMessage stale;
  stale.type = coord::MsgType::kShardCheckpoint;
  stale.op_id = 99;
  stale.epoch = 1;
  coord::ShardMember sm;
  sm.agent_ip = c.node(0).ip().value;
  sm.pod = pods[0];
  sm.image_path = "/ckpt/fence/stale.img";
  stale.shard_members.push_back(sm);
  net::UdpDatagram dgram;
  dgram.src_port = coord::kCoordinatorPort;
  dgram.dst_port = coord::kShardPort;
  dgram.payload = stale.Encode();
  net::Ipv4Packet pkt;
  pkt.src = c.coordinator_node().ip();
  pkt.dst = c.node(0).ip();
  pkt.proto = net::IpProto::kUdp;
  pkt.payload = dgram.Encode();
  c.coordinator_node().stack().SendIpv4(pkt);
  c.sim().RunFor(1 * kSecond);
  EXPECT_FALSE(c.shard_coordinator(0).busy());
  EXPECT_EQ(c.shard_coordinator(0).ops_served(), 2u);
  EXPECT_TRUE(PodProcessLive(c, 0, pods[0]));
  EXPECT_TRUE(c.fs().List("/ckpt/fence/stale").empty());
}

// The sabotage the gen-commit oracle exists to catch, at the protocol
// level: sub-coordinators that acknowledge upward without ever
// forwarding produce a "successful" op during which no agent saved
// anything — exactly the commit-without-saves shape the oracle flags
// (tests/check_oracle_test.cc proves the catch; this proves the lie is
// otherwise invisible to the root).
TEST(CoordHier, AckWithoutForwardCommitsWithZeroAgentSaves) {
  ClusterConfig config;
  config.num_nodes = 4;
  Cluster c(config);
  std::vector<os::PodId> pods;
  auto members = SpawnMembers(c, 4, &pods);
  c.shard_coordinator(0).set_test_ack_without_forward(true);
  c.shard_coordinator(2).set_test_ack_without_forward(true);

  coord::Coordinator::Options options;
  options.fan_out = 2;
  options.tiered = true;
  options.image_prefix = "/ckpt/lie";
  auto stats = c.RunCheckpoint(members, options);

  // The root believes the op committed...
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.shard_count, 2u);
  // ...but no agent ever heard about it and nothing was written.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.agent(i).checkpoints_served(), 0u) << "agent " << i;
  }
  EXPECT_TRUE(c.fs().List("/ckpt/lie/").empty());
  EXPECT_EQ(c.tiered().BytesUnderPrefix("/ckpt/lie/"), 0u);
}

// Roster fragmentation: a single shard of 40 members with long image
// paths exceeds the 1500-byte Ethernet MTU in both directions (the
// downward request roster and the upward tiered <shard-done> report).
// The stack does not IP-fragment — oversized frames are dropped at the
// NIC — so the coordination layer must split and reassemble.
TEST(CoordHier, FragmentedRosterAssemblesAcrossMtuLimit) {
  ClusterConfig config;
  config.num_nodes = 40;
  Cluster c(config);
  std::vector<os::PodId> pods;
  auto members = SpawnMembers(c, 40, &pods);

  coord::Coordinator::Options options;
  options.fan_out = 40;  // one shard: the full roster in one request
  options.tiered = true;
  options.image_prefix =
      "/ckpt/a-rather-long-prefix-that-pushes-the-roster-well-past-one-mtu";
  auto stats = c.RunCheckpoint(members, options);

  ASSERT_TRUE(stats.success);
  EXPECT_EQ(stats.shard_count, 1u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(c.agent(i).checkpoints_served(), 1u) << "agent " << i;
  }
  // Fragmentation overhead stays inside the documented O(N) envelope.
  EXPECT_LE(stats.total_messages, 6 * 40u);
  // Every member's tiered report made it back up: the root knows where
  // each of the 40 images landed.
  ASSERT_EQ(stats.replica_sets.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_FALSE(stats.replica_sets[i].empty()) << "member " << i;
  }
}

}  // namespace
}  // namespace cruz
