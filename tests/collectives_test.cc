// MPI-style ring all-reduce under checkpoint-restart: the paper's claim
// that coordinated CR works "for general TCP-based applications
// (including MPI and PVM applications) without any changes to
// applications or libraries". A checkpoint may land in the middle of a
// collective; the reduced sums must still verify on every rank.
#include <gtest/gtest.h>

#include "apps/collectives.h"
#include "cruz/cluster.h"

namespace cruz {
namespace {

struct AllreduceJob {
  apps::AllreduceConfig base;
  std::vector<os::PodId> pods;
  std::vector<os::Pid> vpids;
  std::vector<std::size_t> nodes;
  std::vector<apps::AllreduceStatus> last;

  static AllreduceJob Start(Cluster& c, std::uint32_t nranks,
                            std::uint32_t iterations) {
    apps::RegisterCollectivesProgram();
    AllreduceJob job;
    job.base.nranks = nranks;
    job.base.iterations = iterations;
    job.base.exit_when_done = false;
    job.last.resize(nranks);
    for (std::uint32_t r = 0; r < nranks; ++r) {
      std::size_t node = r % c.num_nodes();
      job.nodes.push_back(node);
      job.pods.push_back(c.CreatePod(node, "ar" + std::to_string(r)));
      job.base.peers.push_back(c.pods(node).Find(job.pods.back())->ip);
    }
    for (std::uint32_t r = 0; r < nranks; ++r) {
      apps::AllreduceConfig cfg = job.base;
      cfg.rank = r;
      job.vpids.push_back(c.pods(job.nodes[r]).SpawnInPod(
          job.pods[r], "cruz.allreduce_rank", apps::AllreduceArgs(cfg)));
    }
    return job;
  }

  apps::AllreduceStatus Status(Cluster& c, std::uint32_t r) {
    os::Process* p = c.node(nodes[r]).os().FindProcess(
        c.pods(nodes[r]).ToRealPid(pods[r], vpids[r]));
    if (p != nullptr) last[r] = apps::ReadAllreduceStatus(*p);
    return last[r];
  }

  bool AllDone(Cluster& c) {
    for (std::uint32_t r = 0; r < base.nranks; ++r) {
      if (Status(c, r).iterations < base.iterations) return false;
    }
    return true;
  }
};

TEST(Allreduce, FourRanksVerifyEveryIteration) {
  ClusterConfig config;
  config.num_nodes = 2;
  Cluster c(config);
  AllreduceJob job = AllreduceJob::Start(c, 4, 80);
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond));
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(job.Status(c, r).mismatches, 0u) << "rank " << r;
    EXPECT_EQ(job.Status(c, r).last_sum,
              apps::AllreduceExpected(4, 79));
  }
}

TEST(Allreduce, SingleRankDegenerateCase) {
  Cluster c;
  AllreduceJob job = AllreduceJob::Start(c, 1, 10);
  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 60 * kSecond));
  EXPECT_EQ(job.Status(c, 0).mismatches, 0u);
}

class AllreduceCheckpointProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceCheckpointProperty, CollectiveSurvivesCheckpointAnywhere) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 101 + 3);
  ClusterConfig config;
  config.num_nodes = 4;
  config.seed = static_cast<std::uint64_t>(seed);
  Cluster c(config);
  AllreduceJob job = AllreduceJob::Start(c, 4, 120);

  // Two checkpoints at random instants — likely mid-collective (each
  // iteration involves 6 message steps across the ring) — with one
  // kill-everything + coordinated restart in between.
  for (int round = 0; round < 2; ++round) {
    c.sim().RunFor(5 * kMillisecond + rng.NextBelow(80 * kMillisecond));
    std::vector<coord::Coordinator::Member> members;
    for (std::uint32_t r = 0; r < 4; ++r) {
      members.push_back(c.MemberFor(job.nodes[r], job.pods[r]));
    }
    coord::Coordinator::Options options;
    options.image_prefix = "/ckpt/ar" + std::to_string(seed) + "_" +
                           std::to_string(round);
    options.incremental = rng.NextBernoulli(0.5);
    auto stats = c.RunCheckpoint(members, options);
    ASSERT_TRUE(stats.success) << "seed " << seed << " round " << round;

    if (round == 0) {
      // Total failure: all four pods die; restart each on the next node
      // over (a full rotation of the placement).
      for (std::uint32_t r = 0; r < 4; ++r) {
        c.pods(job.nodes[r]).DestroyPod(job.pods[r]);
      }
      c.sim().RunFor(rng.NextBelow(200 * kMillisecond));
      std::vector<coord::Coordinator::Member> restart_members;
      for (std::uint32_t r = 0; r < 4; ++r) {
        job.nodes[r] = (job.nodes[r] + 1) % 4;
        restart_members.push_back(
            c.MemberFor(job.nodes[r], job.pods[r]));
      }
      auto rs = c.RunRestart(restart_members, stats.image_paths, {});
      ASSERT_TRUE(rs.success) << "seed " << seed;
    }
  }

  ASSERT_TRUE(c.sim().RunWhile([&] { return job.AllDone(c); },
                               c.sim().Now() + 600 * kSecond))
      << "seed " << seed;
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(job.Status(c, r).mismatches, 0u)
        << "seed " << seed << " rank " << r;
    EXPECT_EQ(job.Status(c, r).last_sum, apps::AllreduceExpected(4, 119))
        << "seed " << seed << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllreduceCheckpointProperty,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace cruz
