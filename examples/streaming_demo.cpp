// The Fig. 6 scenario as a narrated demo: a TCP stream runs at full rate
// between two nodes; a coordinated checkpoint drops all in-flight packets
// for its duration; TCP's retransmission machinery recovers and the
// stream returns to full rate — no byte lost, duplicated, or reordered.
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"

using namespace cruz;

int main() {
  std::printf("== TCP streaming across a coordinated checkpoint ==\n\n");

  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);

  os::PodId recv_pod = cluster.CreatePod(1, "recv");
  net::Ipv4Address recv_ip = cluster.pods(1).Find(recv_pod)->ip;
  os::Pid recv_vpid = cluster.pods(1).SpawnInPod(
      recv_pod, "cruz.stream_receiver", apps::StreamReceiverArgs(9100));
  cluster.sim().RunFor(5 * kMillisecond);
  os::PodId send_pod = cluster.CreatePod(0, "send");
  cluster.pods(0).SpawnInPod(
      send_pod, "cruz.stream_sender",
      apps::StreamSenderArgs(recv_ip, 9100, /*unbounded=*/0));

  auto received_bytes = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).bytes : 0ull;
  };

  // Warm up to steady state.
  cluster.sim().RunWhile([&] { return received_bytes() > 2 * kMiB; },
                         cluster.sim().Now() + 30 * kSecond);
  std::printf("stream warmed up: %llu bytes delivered\n\n",
              static_cast<unsigned long long>(received_bytes()));

  // Sample the delivered-byte counter every millisecond around the
  // checkpoint, like the paper's 10 ms sliding-window rate plot.
  struct Sample {
    double t_ms;
    std::uint64_t bytes;
  };
  std::vector<Sample> samples;
  TimeNs t0 = cluster.sim().Now() + 50 * kMillisecond;  // checkpoint time
  TimeNs sample_start = t0 - 50 * kMillisecond;
  for (TimeNs t = sample_start; t <= t0 + 450 * kMillisecond;
       t += kMillisecond) {
    cluster.sim().ScheduleAt(t, [&, t] {
      samples.push_back(
          Sample{(static_cast<double>(t) - static_cast<double>(t0)) / 1e6,
                 received_bytes()});
    });
  }

  bool checkpoint_done = false;
  coord::Coordinator::OpStats stats;
  cluster.sim().ScheduleAt(t0, [&] {
    cluster.coordinator().Checkpoint(
        {cluster.MemberFor(0, send_pod), cluster.MemberFor(1, recv_pod)},
        {}, [&](const coord::Coordinator::OpStats& s) {
          stats = s;
          checkpoint_done = true;
        });
  });
  cluster.sim().RunFor(600 * kMillisecond);

  std::printf("checkpoint at t=0: latency %.1f ms, coordination overhead "
              "%.1f us\n\n",
              ToMillis(stats.checkpoint_latency),
              ToMicros(stats.coordination_overhead));
  std::printf("%10s %14s\n", "t (ms)", "rate (Mb/s)");
  // 10 ms sliding-window rate, as in the paper's figure.
  for (std::size_t i = 10; i < samples.size(); i += 5) {
    double window_bytes = static_cast<double>(samples[i].bytes) -
                          static_cast<double>(samples[i - 10].bytes);
    double rate_mbps = window_bytes * 8.0 / 10e-3 / 1e6;
    std::printf("%10.0f %14.1f\n", samples[i].t_ms, rate_mbps);
  }

  // Find when the stream stalled and when it recovered.
  double stall_start = 0, recover_at = 0;
  for (std::size_t i = 10; i < samples.size(); ++i) {
    double window = static_cast<double>(samples[i].bytes) -
                    static_cast<double>(samples[i - 10].bytes);
    if (samples[i].t_ms > 0 && stall_start == 0 && window == 0) {
      stall_start = samples[i].t_ms;
    }
    if (stall_start != 0 && recover_at == 0 && samples[i].t_ms > 20 &&
        window > 0 &&
        samples[i].t_ms > ToMillis(stats.checkpoint_latency)) {
      recover_at = samples[i].t_ms;
    }
  }
  std::printf("\nflow stalled by ~t=%.0f ms, resumed around t=%.0f ms "
              "(checkpoint took %.0f ms; TCP retransmission recovered the "
              "dropped packets)\n",
              stall_start, recover_at, ToMillis(stats.checkpoint_latency));
  std::printf("%s\n", checkpoint_done && recover_at > 0
                          ? "SUCCESS"
                          : "FAILURE");
  return checkpoint_done && recover_at > 0 ? 0 : 1;
}
