// Quickstart: checkpoint a live networked service and restart it on
// another machine — without the service or its client noticing.
//
//   1. Build a simulated 2-node cluster (plus a coordinator node).
//   2. Run a TCP echo server inside a pod on node 1.
//   3. Talk to it from a plain client process on node 2.
//   4. Take a coordinated checkpoint of the pod, then kill it.
//   5. Restart the pod from the image on node 2.
//   6. The client keeps using the SAME connection to the SAME address.
#include <cstdio>

#include "apps/programs.h"
#include "cruz/cluster.h"

using namespace cruz;

int main() {
  std::printf("== Cruz quickstart ==\n\n");

  ClusterConfig config;
  config.num_nodes = 2;
  Cluster cluster(config);

  // --- a service in a pod -------------------------------------------------
  os::PodId pod = cluster.CreatePod(/*node=*/0, "echo-service");
  net::Ipv4Address service_ip = cluster.pods(0).Find(pod)->ip;
  cluster.pods(0).SpawnInPod(pod, "cruz.echo_server",
                             apps::EchoServerArgs(7));
  std::printf("[%6.3fs] echo service up in pod '%s' at %s:7 on node1\n",
              ToSeconds(cluster.sim().Now()), "echo-service",
              service_ip.ToString().c_str());
  cluster.sim().RunFor(10 * kMillisecond);

  // --- an ordinary client, NOT under Cruz control -------------------------
  os::Pid client = cluster.node(1).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(service_ip, 7, /*messages=*/40, /*msg_len=*/128,
                           /*interval=*/5 * kMillisecond));
  auto client_status = [&] {
    os::Process* proc = cluster.node(1).os().FindProcess(client);
    return proc != nullptr ? apps::ReadEchoClientStatus(*proc)
                           : apps::EchoClientStatus{};
  };
  cluster.sim().RunWhile(
      [&] { return client_status().messages_done >= 10; },
      cluster.sim().Now() + 30 * kSecond);
  std::printf("[%6.3fs] client exchanged %llu verified messages\n",
              ToSeconds(cluster.sim().Now()),
              static_cast<unsigned long long>(
                  client_status().messages_done));

  // --- checkpoint ------------------------------------------------------------
  coord::Coordinator::Options options;
  options.image_prefix = "/ckpt/quickstart";
  auto stats =
      cluster.RunCheckpoint({cluster.MemberFor(0, pod)}, options);
  std::printf(
      "[%6.3fs] checkpoint done: latency %.3f ms, coordination overhead "
      "%.1f us, image %s\n",
      ToSeconds(cluster.sim().Now()), ToMillis(stats.checkpoint_latency),
      ToMicros(stats.coordination_overhead),
      stats.image_paths[0].c_str());

  // --- crash the original -----------------------------------------------------
  cluster.pods(0).DestroyPod(pod);
  std::printf("[%6.3fs] pod destroyed on node1 (simulated crash)\n",
              ToSeconds(cluster.sim().Now()));
  cluster.sim().RunFor(100 * kMillisecond);

  // --- restart on node2 ---------------------------------------------------------
  auto restart = cluster.RunRestart({cluster.MemberFor(1, pod)},
                                    stats.image_paths, options);
  std::printf("[%6.3fs] pod restarted on node2 (%s still owns %s)\n",
              ToSeconds(cluster.sim().Now()),
              restart.success ? "ok" : "FAILED",
              service_ip.ToString().c_str());

  // --- the client never noticed ---------------------------------------------------
  int exit_code = -1;
  apps::EchoClientStatus final_status;
  cluster.node(1).os().set_process_exit_hook(
      [&](os::Pid p, int code) {
        if (p == client) {
          exit_code = code;
          final_status = apps::ReadEchoClientStatus(
              *cluster.node(1).os().FindProcess(p));
        }
      });
  cluster.sim().RunFor(120 * kSecond);
  std::printf(
      "[%6.3fs] client finished: exit=%d, %llu/40 messages, %llu "
      "corrupted bytes\n",
      ToSeconds(cluster.sim().Now()), exit_code,
      static_cast<unsigned long long>(final_status.messages_done),
      static_cast<unsigned long long>(final_status.mismatches));

  bool ok = exit_code == 0 && final_status.messages_done == 40 &&
            final_status.mismatches == 0;
  std::printf("\n%s\n", ok ? "SUCCESS: the connection survived the "
                             "checkpoint, crash, and cross-node restart."
                           : "FAILURE");
  return ok ? 0 : 1;
}
