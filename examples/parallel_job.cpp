// Fault-tolerant parallel computing (the paper's §1 motivation): an
// slm-style parallel job runs under the job scheduler with periodic
// coordinated checkpoints; a node dies mid-run; the scheduler restarts
// the whole job from the last checkpoint on the surviving nodes, and the
// final numerical result is identical to an undisturbed run.
#include <cstdio>

#include "apps/slm.h"
#include "cruz/cluster.h"
#include "cruz/scheduler.h"

using namespace cruz;

int main() {
  std::printf("== Parallel job with periodic checkpoints and failure "
              "recovery ==\n\n");
  apps::RegisterSlmProgram();

  constexpr std::uint32_t kRanks = 4;
  constexpr std::uint32_t kIterations = 400;

  ClusterConfig config;
  config.num_nodes = 5;  // 4 compute nodes + 1 spare
  Cluster cluster(config);
  JobScheduler scheduler(cluster);

  JobScheduler::JobSpec spec;
  spec.name = "slm";
  spec.checkpoint_interval = 200 * kMillisecond;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    JobScheduler::TaskSpec task;
    task.program = "cruz.slm_rank";
    task.args = [r](const std::vector<net::Ipv4Address>& pods,
                    std::size_t) {
      apps::SlmConfig cfg;
      cfg.rank = r;
      cfg.nranks = kRanks;
      cfg.peers = pods;
      cfg.rows = 64;
      cfg.cols = 512;
      cfg.iterations = kIterations;
      cfg.compute_per_iteration = kMillisecond;
      cfg.exit_when_done = false;
      return apps::SlmArgs(cfg);
    };
    spec.tasks.push_back(std::move(task));
  }
  std::uint64_t job = scheduler.Submit(spec);
  std::printf("[%6.3fs] submitted %u-rank slm job (checkpoint every %.0f "
              "ms)\n",
              ToSeconds(cluster.sim().Now()), kRanks,
              ToMillis(spec.checkpoint_interval));

  auto rank0_iters = [&] {
    os::Process* proc = scheduler.TaskProcess(*scheduler.Find(job), 0);
    return proc != nullptr ? apps::ReadSlmStatus(*proc).iterations : 0;
  };

  // Run until some checkpoints exist and the job is mid-flight.
  cluster.sim().RunWhile(
      [&] {
        return scheduler.Find(job)->checkpoints_taken >= 2 &&
               rank0_iters() >= kIterations / 3;
      },
      cluster.sim().Now() + 600 * kSecond);
  std::printf("[%6.3fs] progress: rank0 at iteration %llu, %u checkpoints "
              "taken\n",
              ToSeconds(cluster.sim().Now()),
              static_cast<unsigned long long>(rank0_iters()),
              scheduler.Find(job)->checkpoints_taken);

  // --- failure -------------------------------------------------------------
  std::size_t victim = scheduler.Find(job)->tasks[1].node;
  cluster.node(victim).Fail();
  scheduler.HandleNodeFailure(victim);
  std::printf("[%6.3fs] node%zu FAILED; scheduler restarting the job from "
              "its last checkpoint\n",
              ToSeconds(cluster.sim().Now()), victim + 1);
  cluster.sim().RunWhile(
      [&] { return scheduler.Find(job)->restarts >= 1; },
      cluster.sim().Now() + 600 * kSecond);
  std::printf("[%6.3fs] job restarted (placement:",
              ToSeconds(cluster.sim().Now()));
  for (const auto& task : scheduler.Find(job)->tasks) {
    std::printf(" node%zu", task.node + 1);
  }
  std::printf(")\n");

  // --- completion + correctness ------------------------------------------------
  bool done = cluster.sim().RunWhile(
      [&] { return rank0_iters() >= kIterations; },
      cluster.sim().Now() + 1200 * kSecond);
  if (!done) {
    std::printf("FAILURE: job did not finish\n");
    return 1;
  }
  os::Process* rank0 = scheduler.TaskProcess(*scheduler.Find(job), 0);
  apps::SlmStatus status = apps::ReadSlmStatus(*rank0);
  apps::SlmConfig ref;
  ref.rank = 0;
  ref.nranks = kRanks;
  ref.rows = 64;
  ref.cols = 512;
  std::uint64_t expected = apps::SlmReferenceChecksum(ref, kIterations);
  std::printf(
      "[%6.3fs] job finished: rank0 checksum %016llx, reference %016llx "
      "(%s)\n",
      ToSeconds(cluster.sim().Now()),
      static_cast<unsigned long long>(status.edge_checksum),
      static_cast<unsigned long long>(expected),
      status.edge_checksum == expected ? "match" : "MISMATCH");
  std::printf("\n%s\n",
              status.edge_checksum == expected
                  ? "SUCCESS: the computation survived a node failure with "
                    "bit-identical results."
                  : "FAILURE");
  return status.edge_checksum == expected ? 0 : 1;
}
