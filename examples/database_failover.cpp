// Database failover (the paper's §1 motivation names databases among the
// complex applications Cruz supports): a key-value store and its client —
// a distributed application of two pods — run under periodic coordinated
// checkpoints. The database's node fails; BOTH pods are rolled back to
// the last consistent global checkpoint and restarted (the store on a
// spare node, the client in place), exactly the recovery model of §5.
// The client's verification of every GET against its own mirrored table
// never trips: the global state (both tables AND the TCP stream between
// them) is consistent by the Chandy-Lamport argument of §5.1.
#include <cstdio>

#include "apps/kvstore.h"
#include "cruz/cluster.h"

using namespace cruz;

int main() {
  std::printf("== Key-value store failover via coordinated "
              "checkpoint-restart ==\n\n");
  apps::RegisterKvPrograms();

  ClusterConfig config;
  config.num_nodes = 3;  // db node, client node, spare
  Cluster cluster(config);

  os::PodId db_pod = cluster.CreatePod(0, "kvstore");
  net::Ipv4Address db_ip = cluster.pods(0).Find(db_pod)->ip;
  cluster.pods(0).SpawnInPod(db_pod, "cruz.kv_server",
                             apps::KvServerArgs(5432));
  cluster.sim().RunFor(10 * kMillisecond);

  constexpr std::uint32_t kOps = 600;
  os::PodId client_pod = cluster.CreatePod(1, "kvclient");
  os::Pid client_vpid = cluster.pods(1).SpawnInPod(
      client_pod, "cruz.kv_client",
      apps::KvClientArgs(db_ip, 5432, kOps, /*seed=*/42,
                         /*think_time=*/500 * kMicrosecond));
  std::printf("[%6.3fs] kv server at %s:5432 (node1), verified client "
              "workload of %u ops (node2)\n",
              ToSeconds(cluster.sim().Now()), db_ip.ToString().c_str(),
              kOps);

  apps::KvClientStatus last;
  bool client_exited = false;
  int client_code = -1;
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    cluster.node(n).os().set_process_exit_hook([&, n](os::Pid p,
                                                      int code) {
      os::Process* proc = cluster.node(n).os().FindProcess(p);
      // Only a clean exit counts: the recovery path deliberately kills
      // the surviving client pod (SIGKILL) before rolling it back.
      if (proc != nullptr && proc->pod() == client_pod && code == 0) {
        last = apps::ReadKvClientStatus(*proc);
        client_exited = true;
        client_code = code;
      }
    });
  }
  auto client_ops = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(client_pod, client_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    if (proc != nullptr) last = apps::ReadKvClientStatus(*proc);
    return last.operations_done;
  };

  // Run, then take a coordinated checkpoint of the whole application.
  cluster.sim().RunWhile([&] { return client_ops() >= kOps / 3; },
                         cluster.sim().Now() + 60 * kSecond);
  coord::Coordinator::Options options;
  options.image_prefix = "/ckpt/kv";
  auto ck = cluster.RunCheckpoint(
      {cluster.MemberFor(0, db_pod), cluster.MemberFor(1, client_pod)},
      options);
  std::uint64_t ops_at_checkpoint = client_ops();
  std::printf("[%6.3fs] coordinated checkpoint of {server, client} at "
              "op %llu (latency %.2f ms, overhead %.0f us)\n",
              ToSeconds(cluster.sim().Now()),
              static_cast<unsigned long long>(ops_at_checkpoint),
              ToMillis(ck.checkpoint_latency),
              ToMicros(ck.coordination_overhead));

  // The application runs on past the checkpoint... then the db node dies.
  cluster.sim().RunWhile([&] { return client_ops() >= kOps / 2; },
                         cluster.sim().Now() + 60 * kSecond);
  std::printf("[%6.3fs] node1 FAILS at op %llu; ops since the checkpoint "
              "are rolled back and transparently re-executed\n",
              ToSeconds(cluster.sim().Now()),
              static_cast<unsigned long long>(client_ops()));
  cluster.node(0).Fail();
  // The surviving client pod is killed too: recovery restores the whole
  // application to the consistent global state (as the job scheduler's
  // failure handler does).
  cluster.pods(1).DestroyPod(client_pod);
  cluster.sim().RunFor(200 * kMillisecond);

  auto rs = cluster.RunRestart(
      {cluster.MemberFor(2, db_pod), cluster.MemberFor(1, client_pod)},
      ck.image_paths, options);
  std::printf("[%6.3fs] restarted: server on node3 (same IP %s), client "
              "back on node2, resuming from op %llu (%s)\n",
              ToSeconds(cluster.sim().Now()), db_ip.ToString().c_str(),
              static_cast<unsigned long long>(ops_at_checkpoint),
              rs.success ? "ok" : "FAILED");

  bool done = cluster.sim().RunWhile(
      [&] { return client_exited || client_ops() >= kOps; },
      cluster.sim().Now() + 600 * kSecond);
  std::printf("[%6.3fs] client finished: exit=%d ops=%llu verification "
              "failures=%llu\n",
              ToSeconds(cluster.sim().Now()), client_code,
              static_cast<unsigned long long>(last.operations_done),
              static_cast<unsigned long long>(last.verification_failures));

  bool ok = done && client_code == 0 && last.operations_done == kOps &&
            last.verification_failures == 0;
  std::printf("\n%s\n",
              ok ? "SUCCESS: the database application failed over with no "
                   "observable inconsistency."
                 : "FAILURE");
  return ok ? 0 : 1;
}
