// Live migration of a network server between machines (paper §4.2),
// demonstrated for BOTH network-address migration schemes:
//
//   A. Migratable MAC: the NIC supports multiple unicast filters, so the
//      pod's VIF carries its own MAC address that moves with the pod.
//   B. Shared MAC: the VIF uses the physical NIC's MAC; after migration a
//      gratuitous ARP updates the subnet's (IP -> new MAC) mapping, and
//      the fake MAC (virtualized via the SIOCGIFHWADDR ioctl) keeps the
//      DHCP lease identity stable.
//
// In both cases the external client is a plain process that knows nothing
// about Cruz and keeps talking to the same IP across the migration.
#include <cstdio>

#include "apps/programs.h"
#include "ckpt/engine.h"
#include "cruz/cluster.h"

using namespace cruz;

namespace {

bool RunScenario(const char* title, bool nic_supports_multiple_macs) {
  std::printf("--- %s ---\n", title);
  ClusterConfig config;
  config.num_nodes = 3;
  config.with_dhcp_server = true;
  config.node_template.nic_supports_multiple_macs =
      nic_supports_multiple_macs;
  Cluster cluster(config);

  // The pod's address comes from DHCP, keyed by its (stable) fake MAC.
  net::MacAddress fake_mac = net::MacAddress::FromId(0xFACADE);
  net::Ipv4Address leased;
  os::DhcpClient::Request(cluster.node(0).stack(), fake_mac,
                          [&](net::Ipv4Address ip) { leased = ip; });
  cluster.sim().RunFor(kSecond);
  std::printf("DHCP leased %s to chaddr %s\n", leased.ToString().c_str(),
              fake_mac.ToString().c_str());

  pod::PodCreateOptions pod_options;
  pod_options.name = "webserver";
  pod_options.ip = leased;
  pod_options.fake_mac = fake_mac;
  os::PodId pod = cluster.pods(0).CreatePod(pod_options);
  cluster.pods(0).SpawnInPod(pod, "cruz.echo_server",
                             apps::EchoServerArgs(80));
  std::printf("server pod on node1: ip=%s vif-mac=%s (own mac: %s)\n",
              leased.ToString().c_str(),
              cluster.pods(0).Find(pod)->vif_mac.ToString().c_str(),
              cluster.pods(0).Find(pod)->own_mac ? "yes" : "no, shared");
  cluster.sim().RunFor(10 * kMillisecond);

  // External client on node3.
  os::Pid client = cluster.node(2).os().Spawn(
      "cruz.echo_client",
      apps::EchoClientArgs(leased, 80, 50, 256, 3 * kMillisecond));
  int exit_code = -1;
  apps::EchoClientStatus final_status;
  cluster.node(2).os().set_process_exit_hook([&](os::Pid p, int code) {
    if (p == client) {
      exit_code = code;
      final_status = apps::ReadEchoClientStatus(
          *cluster.node(2).os().FindProcess(p));
    }
  });
  auto status = [&] {
    os::Process* proc = cluster.node(2).os().FindProcess(client);
    return proc != nullptr ? apps::ReadEchoClientStatus(*proc)
                           : final_status;
  };
  cluster.sim().RunWhile([&] { return status().messages_done >= 15; },
                         cluster.sim().Now() + 30 * kSecond);
  std::printf("client exchanged %llu messages with node1's pod\n",
              static_cast<unsigned long long>(status().messages_done));

  // --- migrate: checkpoint on node1, destroy, restore on node2 -----------
  ckpt::PodCheckpoint image =
      ckpt::CheckpointEngine::CapturePod(cluster.pods(0), pod);
  cluster.pods(0).DestroyPod(pod);
  cluster.sim().RunFor(30 * kMillisecond);  // brief downtime
  os::PodId restored = ckpt::CheckpointEngine::RestorePod(
      cluster.pods(1),
      ckpt::PodCheckpoint::Deserialize(image.Serialize()));
  ckpt::CheckpointEngine::ResumePod(cluster.pods(1), restored);
  std::printf("migrated to node2: vif-mac now %s%s\n",
              cluster.pods(1).Find(restored)->vif_mac.ToString().c_str(),
              nic_supports_multiple_macs
                  ? " (same MAC moved with the pod)"
                  : " (new physical MAC; gratuitous ARP sent)");

  // The DHCP lease renews to the SAME address thanks to the fake MAC.
  net::Ipv4Address renewed;
  os::DhcpClient::Request(cluster.node(1).stack(), fake_mac,
                          [&](net::Ipv4Address ip) { renewed = ip; });
  cluster.sim().RunFor(kSecond);
  std::printf("DHCP renewal by fake MAC returned %s (%s)\n",
              renewed.ToString().c_str(),
              renewed == leased ? "unchanged" : "CHANGED — bug!");

  // Client completes the remaining messages against the migrated pod.
  cluster.sim().RunFor(120 * kSecond);
  std::printf("client done: exit=%d messages=%llu corrupted=%llu\n\n",
              exit_code,
              static_cast<unsigned long long>(final_status.messages_done),
              static_cast<unsigned long long>(final_status.mismatches));
  return exit_code == 0 && final_status.messages_done == 50 &&
         final_status.mismatches == 0 && renewed == leased;
}

}  // namespace

int main() {
  std::printf("== Live server migration with an unmodified client ==\n\n");
  bool a = RunScenario("scheme A: migratable VIF MAC",
                       /*nic_supports_multiple_macs=*/true);
  bool b = RunScenario("scheme B: shared MAC + gratuitous ARP",
                       /*nic_supports_multiple_macs=*/false);
  std::printf("%s\n", (a && b) ? "SUCCESS: both migration schemes "
                                 "preserved the live connection."
                               : "FAILURE");
  return (a && b) ? 0 : 1;
}
