// Simulator-kernel throughput: how much simulated work fits in a
// wall-clock second. This is the gate for the DES performance pass that
// the paper-scale sweeps (Fig. 5(b) at large N, nightly explorer
// coverage) depend on.
//
// Workloads:
//   * pure-timer       — self-rescheduling timers, no network: raw
//                        schedule/pop throughput of the event queue.
//   * packet-storm     — a million TCP-shaped segment arrivals, each
//                        churning the connection's delayed-ACK, persist,
//                        and RTO timers, materializing a frame buffer,
//                        and emitting per-segment verbose trace
//                        instants. Run twice from one binary: on the
//                        post-change kernel (indexed heap, SBO
//                        callbacks, pooled buffers, sampled tracing)
//                        and on an in-binary replica of the pre-change
//                        kernel (priority_queue + tombstone set,
//                        std::function, fresh buffer + copy per hop,
//                        full-rate verbose tracing — the old kernel had
//                        no sampling mode). Best-of-3 per side; the
//                        untraced queue-only ratio is printed alongside
//                        so each factor's contribution is visible.
//   * net-storm        — a frame flood through the real Nic/
//                        EthernetSwitch data path (frame pool, SBO
//                        callbacks, switch scheduling).
//   * checkpoint-cycle — a 4-node cluster runs a full coordinated
//                        checkpoint, pod destruction, and restart.
//
// Emits BENCH_simperf.json for check_regression.py. Wall-clock metrics
// carry a per-metric threshold (machine-speed variance); the storm's
// peak queue storage is sim-deterministic and gated exactly.
// CRUZ_BENCH_SMOKE=1 shrinks the net/checkpoint workloads; the storm
// always runs its million events so the speedup number stays honest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"
#include "net/ethernet_switch.h"
#include "net/nic.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "slm_sweep.h"

namespace {

using cruz::Bytes;
using cruz::ByteSpan;
using cruz::TimeNs;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Faithful replica of the pre-change EventQueue: binary priority_queue
// of (when, id, std::function) entries, cancellation via an
// unordered_set tombstone check at pop time. Cancelled entries stay in
// the heap until their deadline passes the top.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  cruz::sim::EventId ScheduleAt(TimeNs when, Callback cb) {
    cruz::sim::EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    pending_.insert(id);
    return id;
  }
  bool Cancel(cruz::sim::EventId id) {
    if (id == cruz::sim::kInvalidEventId) return false;
    return pending_.erase(id) != 0;
  }
  bool Empty() const {
    SkipCancelled();
    return heap_.empty();
  }
  Callback PopNext(TimeNs* when) {
    SkipCancelled();
    Entry entry{heap_.top().when, heap_.top().id,
                std::move(const_cast<Entry&>(heap_.top()).cb)};
    heap_.pop();
    pending_.erase(entry.id);
    *when = entry.when;
    return std::move(entry.cb);
  }
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    TimeNs when;
    cruz::sim::EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  void SkipCancelled() const {
    while (!heap_.empty() &&
           pending_.find(heap_.top().id) == pending_.end()) {
      heap_.pop();
    }
  }
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<cruz::sim::EventId> pending_;
  cruz::sim::EventId next_id_ = 1;
};

// --- pure-timer --------------------------------------------------------------

double RunPureTimer(std::uint64_t total_events) {
  cruz::sim::EventQueue q;
  constexpr int kTimers = 256;
  std::uint64_t fired = 0;
  // Each timer re-arms itself 1..kTimers ticks out, staggered so the
  // heap stays populated and ties occur.
  for (int t = 0; t < kTimers; ++t) {
    q.ScheduleAt(static_cast<TimeNs>(t % 16), [] {});
  }
  auto start = std::chrono::steady_clock::now();
  TimeNs now = 0;
  while (fired < total_events) {
    cruz::sim::EventQueue::Callback cb = q.PopNext(&now);
    cb();
    ++fired;
    q.ScheduleAt(now + 1 + (fired % kTimers), [] {});
  }
  double secs = SecondsSince(start);
  return static_cast<double>(fired) / secs;
}

// --- packet-storm ------------------------------------------------------------

// One million "segment arrivals" over kConns connections, each arrival
// doing what the TCP receive path does to the simulator kernel:
//
//   * re-arm the next arrival (+2 us),
//   * cancel + re-arm the delayed-ACK (+50 us) and persist (+200 us)
//     timers — in the old kernel each cancelled entry stays behind as a
//     tombstone that soon reaches the top of the heap and must be
//     skip-popped through the full (by then million-entry) sift-down,
//   * cancel + re-arm the retransmission timer (+200 ms) — these
//     tombstones never reach the top within the run, so the old heap
//     grows by one entry per event (the leak-by-design),
//   * materialize the segment's wire frame — pooled buffer reuse after
//     the change; a fresh allocation plus the delivery-closure copy
//     before it (the pre-change switch captured the frame by value),
//   * emit tcp.rx/tcp.tx verbose trace instants — sampled 1-in-1024
//     after the change; at full rate before it (no sampling existed),
//
// with timer callbacks capturing connection state (32 bytes — larger
// than std::function's 16-byte inline buffer, so the old kernel paid a
// heap allocation per schedule; SimCallback stores it inline).
struct StormResult {
  double events_per_sec = 0;
  std::size_t peak_storage = 0;  // slots (new) or heap entries (legacy)
};

// What a real timer callback closes over: the connection, a sequence
// number, and a deadline. 32 bytes — representative of the TCP/switch
// lambdas in src/tcp and src/net.
struct ConnState {
  std::uint64_t segments = 0;
  std::string tuple;
};
struct TimerCapture {
  ConnState* conn;
  std::uint64_t seq;
  TimeNs deadline;
  std::uint32_t kind;
  std::uint32_t pad;
};

constexpr std::uint32_t kStormSampling = 1024;

// kPooled selects the post-change buffer/tracing discipline; `tracing`
// false runs the queue-only variant (no instants either side) used to
// report the bare data-structure ratio.
template <typename Queue, bool kPooled>
StormResult RunStorm(std::uint64_t total_events, bool tracing) {
  constexpr int kConns = 512;
  constexpr TimeNs kDelack = 50 * cruz::kMicrosecond;
  constexpr TimeNs kPersist = 200 * cruz::kMicrosecond;
  constexpr TimeNs kRto = 200 * cruz::kMillisecond;
  Queue q;
  cruz::obs::Tracer tracer;
  TimeNs now = 0;
  tracer.SetClock([&now] { return now; });
  tracer.set_verbose(tracing);
  if (kPooled) tracer.SetSampling(kStormSampling);
  std::vector<ConnState> conns(kConns);
  for (int c = 0; c < kConns; ++c) {
    conns[static_cast<std::size_t>(c)].tuple =
        "10.0.0." + std::to_string(c % 250) + ":" +
        std::to_string(30000 + c) + "<->10.0.1.7:9200";
  }
  std::vector<cruz::sim::EventId> delack(kConns), persist(kConns),
      rto(kConns);
  std::vector<Bytes> pool;
  const Bytes wire_src(1462, 0x5A);
  std::uint64_t fired = 0;
  std::uint64_t sink = 0;
  StormResult out;
  auto timer_cb = [](TimerCapture cap) {
    return [cap] { ++cap.conn->segments; };
  };
  for (int c = 0; c < kConns; ++c) {
    TimerCapture cap{&conns[static_cast<std::size_t>(c)], 0, 0, 0, 0};
    delack[c] = q.ScheduleAt(kDelack, timer_cb(cap));
    persist[c] = q.ScheduleAt(kPersist, timer_cb(cap));
    rto[c] = q.ScheduleAt(kRto, timer_cb(cap));
    q.ScheduleAt(static_cast<TimeNs>(c), timer_cb(cap));
  }
  auto start = std::chrono::steady_clock::now();
  auto storage = [&q]() -> std::size_t {
    if constexpr (requires { q.storage_slots(); }) {
      return q.storage_slots();
    } else {
      return q.heap_entries();
    }
  };
  while (fired < total_events) {
    typename Queue::Callback cb = q.PopNext(&now);
    cb();
    std::size_t c = fired % kConns;
    ++fired;
    {
      // The segment's wire frame, switch ingress -> delivery.
      Bytes frame;
      if constexpr (kPooled) {
        if (!pool.empty()) {
          frame = std::move(pool.back());
          pool.pop_back();
        }
        frame.clear();
      }
      frame.insert(frame.end(), wire_src.begin(), wire_src.end());
      sink += frame[3];
      if constexpr (!kPooled) {
        Bytes delivery_copy = frame;  // pre-change by-value capture
        sink += delivery_copy[5];
      } else {
        sink += frame[5];
      }
      if constexpr (kPooled) {
        if (pool.size() < 128) pool.push_back(std::move(frame));
      }
    }
    if (tracer.VerboseSample()) {
      tracer.Instant("tcp", "tcp.rx",
                     cruz::obs::TraceAttrs{}
                         .Conn(conns[c].tuple)
                         .Arg("seq", fired)
                         .Arg("len", std::uint64_t{1448})
                         .Arg("ack", fired));
    }
    if (tracer.VerboseSample()) {
      tracer.Instant("tcp", "tcp.tx",
                     cruz::obs::TraceAttrs{}
                         .Conn(conns[c].tuple)
                         .Arg("seq", fired)
                         .Arg("len", std::uint64_t{1448})
                         .Arg("retransmit", "false"));
    }
    TimerCapture cap{&conns[c], fired, now + kRto, 0, 0};
    q.Cancel(delack[c]);
    delack[c] = q.ScheduleAt(now + kDelack, timer_cb(cap));
    q.Cancel(persist[c]);
    persist[c] = q.ScheduleAt(now + kPersist, timer_cb(cap));
    q.Cancel(rto[c]);
    rto[c] = q.ScheduleAt(now + kRto, timer_cb(cap));
    q.ScheduleAt(now + 2 * cruz::kMicrosecond, timer_cb(cap));
    if ((fired & 0x3FFFF) == 0) {
      out.peak_storage = std::max(out.peak_storage, storage());
    }
  }
  double secs = SecondsSince(start);
  out.peak_storage = std::max(out.peak_storage, storage());
  out.events_per_sec = static_cast<double>(fired) / secs;
  if (sink == 0) out.events_per_sec = 0;  // keep `sink` observable
  return out;
}

// Best wall-clock rate of `reps` runs (the peak storage is identical
// across runs — the workload is deterministic).
template <typename Queue, bool kPooled>
StormResult BestStorm(std::uint64_t total_events, bool tracing, int reps) {
  StormResult best;
  for (int r = 0; r < reps; ++r) {
    StormResult got = RunStorm<Queue, kPooled>(total_events, tracing);
    best.events_per_sec = std::max(best.events_per_sec, got.events_per_sec);
    best.peak_storage = std::max(best.peak_storage, got.peak_storage);
  }
  return best;
}

// --- net-storm ---------------------------------------------------------------

// Frame flood through the real switch data path: kNics NICs ping-pong
// minimum-size frames as fast as serialization allows, each delivery
// re-arming a per-NIC retransmission timer. Exercises the frame pool,
// the SBO delivery callbacks, and switch scheduling end to end.
double RunNetStorm(std::uint64_t target_events) {
  using namespace cruz;
  sim::Simulator sim(7);
  net::EthernetSwitch sw(sim, net::LinkParams{});
  constexpr int kNics = 8;
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::vector<sim::EventId> rto(kNics, sim::kInvalidEventId);
  for (int i = 0; i < kNics; ++i) {
    net::MacAddress mac{};
    mac.octets = {0x02, 0, 0, 0, 0, static_cast<std::uint8_t>(i + 1)};
    nics.push_back(
        std::make_unique<net::Nic>(sim, mac, "n" + std::to_string(i)));
    sw.AttachNic(nics.back().get());
  }
  auto frame_to = [&](int src, int dst) {
    ByteWriter w(nics[src]->AcquireFrameBuffer(), 64);
    net::EthernetFrame::EncodeHeader(w, nics[dst]->primary_mac(),
                                     nics[src]->primary_mac(),
                                     net::EtherType::kIpv4);
    for (int p = 0; p < 46; ++p) w.PutU8(0);
    return w.Take();
  };
  for (int i = 0; i < kNics; ++i) {
    int peer = (i + 1) % kNics;
    nics[i]->set_receive_handler([&, i, peer](ByteSpan) {
      nics[i]->Transmit(frame_to(i, peer));
      if (rto[i] != sim::kInvalidEventId) sim.Cancel(rto[i]);
      rto[i] = sim.Schedule(200 * kMillisecond, [] {});
    });
    nics[i]->Transmit(frame_to(i, peer));
  }
  auto start = std::chrono::steady_clock::now();
  sim.RunWhile([&] { return sim.events_executed() >= target_events; });
  double secs = SecondsSince(start);
  return static_cast<double>(sim.events_executed()) / secs;
}

// --- checkpoint-cycle --------------------------------------------------------

// Full coordinated checkpoint + destroy + restart of a 4-node cluster
// running counter pods: the end-to-end path every Fig. 5 sweep takes.
double RunCheckpointCycle(int cycles) {
  using namespace cruz;
  std::uint64_t events = 0;
  auto start = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    ClusterConfig config;
    config.num_nodes = 4;
    config.seed = 1000 + static_cast<std::uint64_t>(cycle);
    Cluster cluster(config);
    std::vector<os::PodId> pods;
    std::vector<coord::Coordinator::Member> members;
    for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
      pods.push_back(cluster.CreatePod(i, "p" + std::to_string(i)));
      cluster.pods(i).SpawnInPod(pods.back(), "cruz.counter",
                                 apps::CounterArgs(1u << 30));
      members.push_back(cluster.MemberFor(i, pods.back()));
    }
    cluster.sim().RunFor(50 * kMillisecond);
    coord::Coordinator::Options options;
    options.image_prefix = "/ckpt/simperf" + std::to_string(cycle);
    auto ck = cluster.RunCheckpoint(members, options);
    if (!ck.success) return 0;
    for (std::uint32_t i = 0; i < config.num_nodes; ++i) {
      cluster.pods(i).DestroyPod(pods[i]);
    }
    cluster.sim().RunFor(10 * kMillisecond);
    auto rs = cluster.RunRestart(members, ck.image_paths, options);
    if (!rs.success) return 0;
    cluster.sim().RunFor(50 * kMillisecond);
    events += cluster.sim().events_executed();
  }
  double secs = SecondsSince(start);
  return static_cast<double>(events) / secs;
}

}  // namespace

int main() {
  const bool smoke = cruz::bench::BenchSmoke();
  std::printf("== Simulator kernel throughput (bench_simperf)%s ==\n\n",
              smoke ? " [smoke]" : "");

  const std::uint64_t kStormEvents = 1'000'000;
  const std::uint64_t kTimerEvents = smoke ? 200'000 : 1'000'000;
  const std::uint64_t kNetEvents = smoke ? 200'000 : 1'000'000;
  const int kCycles = smoke ? 2 : 5;

  double pure = RunPureTimer(kTimerEvents);
  std::printf("pure-timer        %12.0f events/s (%llu events)\n", pure,
              static_cast<unsigned long long>(kTimerEvents));

  StormResult storm =
      BestStorm<cruz::sim::EventQueue, true>(kStormEvents, true, 3);
  StormResult legacy =
      BestStorm<LegacyEventQueue, false>(kStormEvents, true, 3);
  double speedup = legacy.events_per_sec > 0
                       ? storm.events_per_sec / legacy.events_per_sec
                       : 0;
  std::printf("packet-storm      %12.0f events/s, peak %zu slots "
              "(tracing sampled 1/%u, pooled frames)\n",
              storm.events_per_sec, storm.peak_storage, kStormSampling);
  std::printf("  pre-change      %12.0f events/s, peak %zu heap entries "
              "(full-rate tracing, per-hop allocs, tombstones)\n",
              legacy.events_per_sec, legacy.peak_storage);
  std::printf("  speedup         %12.1fx\n", speedup);
  StormResult qs =
      BestStorm<cruz::sim::EventQueue, true>(kStormEvents, false, 1);
  StormResult ql =
      BestStorm<LegacyEventQueue, false>(kStormEvents, false, 1);
  std::printf("  queue-only      %12.1fx (untraced: %0.f vs %.0f "
              "events/s — data structure + callbacks + buffers alone)\n",
              ql.events_per_sec > 0 ? qs.events_per_sec / ql.events_per_sec
                                    : 0,
              qs.events_per_sec, ql.events_per_sec);

  double net = RunNetStorm(kNetEvents);
  std::printf("net-storm         %12.0f events/s (%llu events)\n", net,
              static_cast<unsigned long long>(kNetEvents));

  double ckpt = RunCheckpointCycle(kCycles);
  std::printf("checkpoint-cycle  %12.0f events/s (%d cycles)\n", ckpt,
              kCycles);

  // The storm's peak queue footprint is sim-deterministic: the indexed
  // heap must stay at the ~2*kConns live events (RTO + next arrival per
  // connection), proving cancelled entries do not accumulate.
  bool ok = storm.peak_storage < 8192 &&
            legacy.peak_storage > kStormEvents / 2 && speedup >= 10.0 &&
            pure > 0 && net > 0 && ckpt > 0;
  std::printf("\nshape check: %s\n",
              ok ? "indexed heap bounded; legacy heap grows with "
                   "cancelled entries; >=10x storm speedup"
                 : "UNEXPECTED");

  std::FILE* gate = std::fopen("BENCH_simperf.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate, "{\"bench\": \"simperf\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit, const char* direction,
                      double threshold) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"%s\"",
                   first ? "" : ",\n", name.c_str(), value, unit,
                   direction);
      if (threshold > 0) {
        std::fprintf(gate, ", \"threshold\": %.2f", threshold);
      }
      std::fprintf(gate, "}");
      first = false;
    };
    // Wall-clock rates get a wide per-metric threshold (CI machines
    // vary); the deterministic footprint and the relative speedup are
    // tighter.
    metric("pure_timer_events_per_sec", pure, "events/s", "higher", 0.5);
    metric("storm_events_per_sec", storm.events_per_sec, "events/s",
           "higher", 0.5);
    metric("storm_speedup_vs_legacy", speedup, "x", "higher", 0.4);
    metric("storm_peak_queue_slots",
           static_cast<double>(storm.peak_storage), "slots", "lower", 0);
    metric("net_storm_events_per_sec", net, "events/s", "higher", 0.5);
    metric("ckpt_cycle_events_per_sec", ckpt, "events/s", "higher", 0.5);
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
  }
  return ok ? 0 : 1;
}
