// §5.2 message complexity: Cruz's coordinated checkpoint exchanges the
// minimum messages needed for atomicity — O(N) — while flush-based
// protocols (MPVM, CoCheck, LAM-MPI) exchange markers between every pair
// of nodes, O(N²). This bench counts actual protocol messages for both,
// sweeping the node count.
#include <cstdio>

#include "apps/programs.h"
#include "cruz/cluster.h"

namespace {

std::uint32_t CountMessages(std::uint32_t nodes,
                            cruz::coord::ProtocolVariant variant) {
  using namespace cruz;
  ClusterConfig config;
  config.num_nodes = nodes;
  Cluster cluster(config);
  std::vector<coord::Coordinator::Member> members;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    os::PodId pod = cluster.CreatePod(i, "p" + std::to_string(i));
    cluster.pods(i).SpawnInPod(pod, "cruz.counter",
                               apps::CounterArgs(1u << 30));
    members.push_back(cluster.MemberFor(i, pod));
  }
  cluster.sim().RunFor(10 * kMillisecond);
  coord::Coordinator::Options options;
  options.variant = variant;
  options.image_prefix = "/ckpt/msg";
  auto stats = cluster.RunCheckpoint(members, options);
  return stats.success ? stats.total_messages : 0;
}

}  // namespace

int main() {
  using cruz::coord::ProtocolVariant;

  std::printf("== Coordination message complexity: Cruz vs flush "
              "baseline ==\n\n");
  std::printf("%6s %12s %18s %14s\n", "nodes", "cruz msgs",
              "flush-baseline", "flush extra");
  bool ok = true;
  std::uint32_t prev_extra = 0;
  // The paper argues 2-8 nodes; the tail of the sweep goes well past
  // that to make the O(N) vs O(N^2) separation unmistakable.
  for (std::uint32_t n : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 12u, 16u, 24u, 32u}) {
    std::uint32_t cruz_msgs =
        CountMessages(n, ProtocolVariant::kBlocking);
    std::uint32_t flush_msgs =
        CountMessages(n, ProtocolVariant::kFlushBaseline);
    std::uint32_t extra = flush_msgs - cruz_msgs;
    std::printf("%6u %12u %18u %14u\n", n, cruz_msgs, flush_msgs, extra);
    // Cruz: exactly 4 messages per member (checkpoint/done/continue/
    // continue-done) — linear. Flush adds N*(N-1) marker+ack traffic.
    if (cruz_msgs != 4 * n) ok = false;
    if (extra != 2 * n * (n - 1)) ok = false;
    if (n > 2 && extra <= prev_extra) ok = false;
    prev_extra = extra;
  }
  std::printf("\npaper: O(N) for Cruz (two-phase-commit minimum) vs "
              "O(N^2) for flush-based protocols\n");
  std::printf("shape check: %s\n",
              ok ? "cruz = 4N exactly; baseline adds 2*N*(N-1) marker "
                   "messages"
                 : "UNEXPECTED COUNTS");
  return ok ? 0 : 1;
}
