// Shared harness for the §6 slm experiments (Fig. 5a / 5b and the restart
// analogue): builds an N-node cluster calibrated to the paper's testbed
// behaviour, runs the slm benchmark with periodic coordinated checkpoints,
// and collects the coordinator-side timing statistics.
//
// Calibration notes (paper testbed: dual 1 GHz P-III, gigabit Ethernet,
// local disk): per-rank slm state is sized so that writing a checkpoint
// image takes ~1 s at the configured disk rate, matching the flat ~1 s
// total checkpoint latency of Fig. 5a; small-message one-way latency is
// ~50 us (2005-era kernel UDP stacks), and per-datagram protocol
// processing at the coordinator is ~25 us; with two protocol phases
// queueing there, the Fig. 5b overhead grows ~50 us per node.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/slm.h"
#include "cruz/cluster.h"
#include "obs/causal/critical_path.h"
#include "obs/trace_query.h"

namespace cruz::bench {

// CI smoke mode: CRUZ_BENCH_SMOKE=1 shrinks sweeps so the regression
// gate runs in seconds. Committed baselines are generated in the same
// mode, so comparisons stay apples-to-apples (and, because all metrics
// are sim-time, exact).
inline bool BenchSmoke() {
  const char* v = std::getenv("CRUZ_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct SweepResult {
  std::uint32_t nodes = 0;
  double mean_latency_ms = 0;   // Fig. 5a: total checkpoint latency
  double stddev_latency_ms = 0;
  double mean_overhead_us = 0;  // Fig. 5b: coordination overhead
  double stddev_overhead_us = 0;
  double mean_local_ms = 0;     // max local checkpoint time
  double mean_downtime_ms = 0;  // max pod downtime (== local for
                                // stop-the-world, snapshot-only for COW)
  // The same two quantities re-derived from the exported trace spans
  // (agent.save / agent.downtime, max per op, mean across ops). Benches
  // cross-check these against the coordinator-reported numbers above,
  // which come from CaptureStats-driven <done> replies.
  double span_mean_local_ms = 0;
  double span_mean_downtime_ms = 0;
  // Causal critical-path attribution (src/obs/causal) over the same ops,
  // rebuilt from the exported trace: a third, independent accounting of
  // where the wall time went. cp_attribution_ok demands that each op's
  // phase totals tile its coord.op span exactly and that the span's wall
  // time agrees with the coordinator's full_latency within 1%.
  double cp_mean_save_ms = 0;         // save-downtime + save-background
  double cp_mean_commit_wait_us = 0;  // done/continue hops + commit gap
  double cp_mean_freeze_wait_us = 0;  // dispatch + request/done hops
  double cp_mean_unattributed_pct = 0;  // % of wall, ~0 when healthy
  bool cp_attribution_ok = true;
  std::uint32_t samples = 0;
  std::uint32_t messages_per_op = 0;
  std::vector<std::string> last_images;  // for restart benches
};

struct SweepOptions {
  std::uint32_t min_nodes = 2;
  std::uint32_t max_nodes = 8;
  // Application runs this much simulated time; checkpoints every 8 s of
  // execution as in §6.
  DurationNs app_duration = 40 * kSecond;
  DurationNs checkpoint_interval = 8 * kSecond;
  coord::ProtocolVariant variant = coord::ProtocolVariant::kBlocking;
  // Forked (copy-on-write) capture: the pod resumes after the in-memory
  // snapshot; serialize + disk write happen in the background.
  bool copy_on_write = false;
  // Version-2 images with RLE page compression.
  bool compress = false;
  // Grid sized for a ~2 MiB image; the disk rate makes that ~1 s.
  std::uint32_t grid_rows = 512;
  std::uint32_t grid_cols = 512;
  std::uint64_t disk_bytes_per_sec = static_cast<std::uint64_t>(2.2 * kMiB);
};

inline ClusterConfig CalibratedClusterConfig(std::uint32_t nodes,
                                             const SweepOptions& opt) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.link.propagation_delay = 50 * kMicrosecond;
  config.node_template.disk_write_bytes_per_sec = opt.disk_bytes_per_sec;
  return config;
}

inline void CalibrateUdpProcessing(Cluster& cluster) {
  // 2005-era per-datagram UDP receive processing, serialized on the
  // protocol CPU of each node. 25 us per datagram; both protocol phases
  // queue at the coordinator, so the overhead grows ~50 us per node.
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    cluster.node(i).stack().set_udp_service_processing_cost(
        25 * kMicrosecond);
  }
  cluster.coordinator_node().stack().set_udp_service_processing_cost(
      25 * kMicrosecond);
}

// Runs the slm benchmark on `nodes` nodes with periodic checkpoints and
// returns aggregated coordinator statistics.
inline SweepResult RunSlmSweep(std::uint32_t nodes,
                               const SweepOptions& opt) {
  apps::RegisterSlmProgram();
  Cluster cluster(CalibratedClusterConfig(nodes, opt));
  CalibrateUdpProcessing(cluster);

  // One rank pod per node.
  apps::SlmConfig base;
  base.nranks = nodes;
  base.rows = opt.grid_rows;
  base.cols = opt.grid_cols;
  base.compute_per_iteration = 2 * kMillisecond;
  base.iterations = static_cast<std::uint32_t>(
      opt.app_duration / base.compute_per_iteration);
  base.exit_when_done = false;
  std::vector<os::PodId> pods;
  std::vector<coord::Coordinator::Member> members;
  for (std::uint32_t r = 0; r < nodes; ++r) {
    pods.push_back(cluster.CreatePod(r, "slm" + std::to_string(r)));
    base.peers.push_back(cluster.pods(r).Find(pods.back())->ip);
    members.push_back(cluster.MemberFor(r, pods.back()));
  }
  for (std::uint32_t r = 0; r < nodes; ++r) {
    apps::SlmConfig cfg = base;
    cfg.rank = r;
    cluster.pods(r).SpawnInPod(pods[r], "cruz.slm_rank",
                               apps::SlmArgs(cfg));
  }
  cluster.sim().RunFor(kSecond);  // ring establishment

  std::vector<double> latencies_ms, overheads_us, locals_ms, downtimes_ms;
  std::vector<std::uint64_t> op_ids;
  std::vector<DurationNs> full_latencies;
  SweepResult result;
  result.nodes = nodes;
  TimeNs end = cluster.sim().Now() + opt.app_duration;
  std::uint32_t generation = 0;
  while (cluster.sim().Now() < end) {
    cluster.sim().RunFor(opt.checkpoint_interval);
    coord::Coordinator::Options options;
    options.variant = opt.variant;
    options.copy_on_write = opt.copy_on_write;
    options.compress = opt.compress;
    options.image_prefix =
        "/ckpt/sweep_n" + std::to_string(nodes) + "_g" +
        std::to_string(generation++);
    auto stats = cluster.RunCheckpoint(members, options);
    if (!stats.success) continue;
    latencies_ms.push_back(ToMillis(stats.checkpoint_latency));
    overheads_us.push_back(ToMicros(stats.coordination_overhead));
    locals_ms.push_back(ToMillis(stats.max_local));
    downtimes_ms.push_back(ToMillis(stats.max_downtime));
    op_ids.push_back(stats.op_id);
    full_latencies.push_back(stats.full_latency);
    result.messages_per_op = stats.total_messages;
    result.last_images = stats.image_paths;
  }

  // Re-derive local-save and downtime from the trace: for each op, the
  // max agent.save / agent.downtime span duration across its members.
  {
    obs::TraceQuery query(cluster.sim().tracer());
    double save_sum_ms = 0, downtime_sum_ms = 0;
    for (std::uint64_t op : op_ids) {
      save_sum_ms += ToMillis(query.MaxDuration(
          obs::TraceQuery::Filter{}.Name("agent.save").Op(op)));
      downtime_sum_ms += ToMillis(query.MaxDuration(
          obs::TraceQuery::Filter{}.Name("agent.downtime").Op(op)));
    }
    if (!op_ids.empty()) {
      result.span_mean_local_ms =
          save_sum_ms / static_cast<double>(op_ids.size());
      result.span_mean_downtime_ms =
          downtime_sum_ms / static_cast<double>(op_ids.size());
    }
  }

  // Third accounting: the causal critical-path breakdown, cross-checked
  // against the coordinator's own wall-time measurement per op.
  {
    const auto& ring = cluster.sim().tracer().events();
    obs::causal::CausalGraph graph = obs::causal::CausalGraph::Build(
        std::vector<obs::TraceEvent>(ring.begin(), ring.end()));
    if (graph.stats().mis_joins != 0) result.cp_attribution_ok = false;
    obs::causal::CriticalPathAnalyzer analyzer(graph);
    double save_ms = 0, commit_us = 0, freeze_us = 0, unattr_pct = 0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < op_ids.size(); ++i) {
      std::optional<obs::causal::OpBreakdown> b =
          analyzer.AnalyzeOp(op_ids[i]);
      if (!b.has_value()) {
        result.cp_attribution_ok = false;
        continue;
      }
      DurationNs attributed = 0;
      for (const obs::causal::PhaseTotal& p : b->phases) {
        attributed += p.total;
      }
      DurationNs wall = b->wall();
      DurationNs full = full_latencies[i];
      DurationNs drift = wall > full ? wall - full : full - wall;
      if (attributed != wall || (full > 0 && drift > full / 100)) {
        result.cp_attribution_ok = false;
      }
      save_ms += ToMillis(b->PhaseNs("save-downtime") +
                          b->PhaseNs("save-background"));
      commit_us += ToMicros(b->PhaseNs("commit-wait"));
      freeze_us += ToMicros(b->PhaseNs("freeze-wait"));
      unattr_pct += wall == 0
                        ? 0
                        : 100.0 * static_cast<double>(b->unattributed) /
                              static_cast<double>(wall);
      ++counted;
    }
    if (counted > 0) {
      double n = static_cast<double>(counted);
      result.cp_mean_save_ms = save_ms / n;
      result.cp_mean_commit_wait_us = commit_us / n;
      result.cp_mean_freeze_wait_us = freeze_us / n;
      result.cp_mean_unattributed_pct = unattr_pct / n;
    }
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  auto stddev = [&](const std::vector<double>& v, double m) {
    if (v.size() < 2) return 0.0;
    double s = 0;
    for (double x : v) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
  };
  result.samples = static_cast<std::uint32_t>(latencies_ms.size());
  result.mean_latency_ms = mean(latencies_ms);
  result.stddev_latency_ms = stddev(latencies_ms, result.mean_latency_ms);
  result.mean_overhead_us = mean(overheads_us);
  result.stddev_overhead_us =
      stddev(overheads_us, result.mean_overhead_us);
  result.mean_local_ms = mean(locals_ms);
  result.mean_downtime_ms = mean(downtimes_ms);
  return result;
}

}  // namespace cruz::bench
