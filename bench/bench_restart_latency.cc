// §6: "Performance results for the restart operation are similar to the
// results of Figures 5(a) and 5(b)". This bench checkpoints the slm job
// at each node count, destroys the pods, and measures the coordinated
// restart: total latency (dominated by reading the images from disk) and
// coordination overhead.
#include <cstdio>

#include "slm_sweep.h"

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  std::printf("== Coordinated restart latency (slm, restart from "
              "images) ==\n\n");
  std::printf("%6s %18s %20s\n", "nodes", "latency (ms)",
              "overhead (us)");

  SweepOptions opt;
  bool ok = true;
  for (std::uint32_t n = opt.min_nodes; n <= opt.max_nodes; ++n) {
    apps::RegisterSlmProgram();
    Cluster cluster(CalibratedClusterConfig(n, opt));
    CalibrateUdpProcessing(cluster);

    apps::SlmConfig base;
    base.nranks = n;
    base.rows = opt.grid_rows;
    base.cols = opt.grid_cols;
    base.compute_per_iteration = 2 * kMillisecond;
    base.iterations = 1u << 30;
    base.exit_when_done = false;
    std::vector<os::PodId> pods;
    std::vector<coord::Coordinator::Member> members;
    for (std::uint32_t r = 0; r < n; ++r) {
      pods.push_back(cluster.CreatePod(r, "slm" + std::to_string(r)));
      base.peers.push_back(cluster.pods(r).Find(pods.back())->ip);
      members.push_back(cluster.MemberFor(r, pods.back()));
    }
    for (std::uint32_t r = 0; r < n; ++r) {
      apps::SlmConfig cfg = base;
      cfg.rank = r;
      cluster.pods(r).SpawnInPod(pods[r], "cruz.slm_rank",
                                 apps::SlmArgs(cfg));
    }
    cluster.sim().RunFor(3 * kSecond);

    coord::Coordinator::Options options;
    options.image_prefix = "/ckpt/restart_n" + std::to_string(n);
    auto ck = cluster.RunCheckpoint(members, options);
    if (!ck.success) {
      ok = false;
      continue;
    }
    for (std::uint32_t r = 0; r < n; ++r) {
      cluster.pods(r).DestroyPod(pods[r]);
    }
    cluster.sim().RunFor(kSecond);
    auto rs = cluster.RunRestart(members, ck.image_paths, options);
    if (!rs.success) ok = false;
    std::printf("%6u %18.1f %20.1f\n", n,
                ToMillis(rs.checkpoint_latency),
                ToMicros(rs.coordination_overhead));
    // Restart reads at ~2x the write rate: expect roughly half the
    // checkpoint latency, with the same negligible overhead.
    if (ToMillis(rs.checkpoint_latency) > ToMillis(ck.checkpoint_latency)) {
      ok = false;
    }
    if (rs.coordination_overhead > rs.max_local / 10) ok = false;
  }
  std::printf("\npaper: restart results similar to Fig. 5(a)/(b) — "
              "second-scale local work, microsecond-scale coordination\n");
  std::printf("shape check: %s\n",
              ok ? "restart latency disk-bound with negligible "
                   "coordination overhead"
                 : "UNEXPECTED");
  return ok ? 0 : 1;
}
