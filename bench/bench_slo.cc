// SLO violation sweep: checkpoints and migrations under open-loop load.
//
// Every disruption mechanism in the repo — stop-the-world vs
// copy-on-write checkpoints, and all four live-migration modes — is run
// against the same open-loop kvstore workload (LoadGen, coordinated
// omission impossible by construction), with an SloMonitor evaluating
// `p95 < 5ms per 250ms window` over the completion timeline and
// BuildSloReport joining each breached window to the responsible
// phase + node through the causal trace. The interesting outputs are
// the *differentials*: a stop-the-world save must breach the objective
// while copy-on-write stays compliant, and the migration mode ladder
// shows up as violation-window counts instead of raw downtime.
//
// Emits BENCH_slo.json for check_regression.py. CRUZ_BENCH_SMOKE=1
// runs the 8 MiB pod only (committed baselines are generated in that
// mode). On a shape-check failure the failing scenario's full trace is
// written to slo_trace_<scenario>.jsonl so CI can upload it.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kvstore.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"
#include "load/loadgen.h"
#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"
#include "obs/causal/slo_report.h"
#include "obs/latency/histogram.h"
#include "obs/latency/slo.h"
#include "obs/latency/windowed.h"
#include "slm_sweep.h"

namespace {

using namespace cruz;

constexpr std::uint64_t kBallastBase = 0x4000;
constexpr DurationNs kWindow = 250 * kMillisecond;
constexpr DurationNs kThreshold = 5 * kMillisecond;

struct ScenarioSpec {
  const char* name;        // metric prefix, e.g. "stw_checkpoint"
  bool checkpoint;         // checkpoint when true, migration otherwise
  bool copy_on_write;      // checkpoint flavor
  ckpt::MigrateMode mode;  // migration flavor
};

struct ScenarioResult {
  std::size_t violations = 0;
  std::size_t attributed = 0;
  double worst_p95_ms = 0;
  double worst_p999_ms = 0;
  double recovery_ms = 0;
  std::uint64_t failures = 0;
  std::uint64_t completed = 0;
  std::uint64_t expected = 0;
  bool disruption_ok = false;   // checkpoint/migration itself succeeded
  bool crosscheck_ok = false;   // phases tile wall, <= 1% unattributed
  bool op_charged = false;      // >=1 violation joined to a real phase
  std::string report;
  std::string trace_jsonl;
};

ScenarioResult Measure(const ScenarioSpec& spec,
                       std::uint64_t ballast_pages) {
  apps::RegisterKvPrograms();
  load::RegisterLoadPrograms();
  ScenarioResult result;

  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  c.sim().tracer().set_capacity(1 << 18);
  c.sim().tracer().set_verbose(true);
  c.sim().tracer().SetSampling(8);

  os::PodId id = c.CreatePod(0, "kv");
  net::Ipv4Address ip = c.pods(0).Find(id)->ip;
  os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.kv_server",
                                      apps::KvServerArgs(5432, true));
  os::Process* server =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < ballast_pages; ++i) {
    server->memory().InstallPage(kBallastBase + i, page);
  }
  c.sim().RunFor(5 * kMillisecond);

  load::LoadGenOptions lo;
  lo.server_ip = ip;
  lo.port = 5432;
  lo.connections = 48;
  lo.interarrival = 24 * kMillisecond;  // aggregate 2000 req/s
  lo.requests_per_conn = 60;
  lo.base = c.sim().Now() + 200 * kMillisecond;
  lo.window = kWindow;
  load::LoadGen lg(c.node(2).os(), lo);
  obs::SloMonitor monitor(
      &c.sim().tracer(),
      {obs::SloObjective{"p95<5ms", 0.95, kThreshold}});
  std::uint64_t worst_p95 = 0;
  std::uint64_t worst_p999 = 0;
  lg.recorder().SetWindowCallback(
      [&](const obs::WindowStats& w, const obs::LatencyHistogram& h) {
        monitor.OnWindow(w, h);
        if (w.count > 0) {
          std::uint64_t p95 = h.Percentile(0.95);
          if (p95 > worst_p95) worst_p95 = p95;
          if (w.p999 > worst_p999) worst_p999 = w.p999;
        }
      });
  lg.Start();
  c.sim().RunUntil(lo.base + 600 * kMillisecond);

  // The disruption, mid-load.
  if (spec.checkpoint) {
    coord::Coordinator::Options options;
    options.copy_on_write = spec.copy_on_write;
    if (spec.copy_on_write) {
      options.variant = coord::ProtocolVariant::kOptimized;
    }
    options.image_prefix = "/ckpt/slo";
    coord::Coordinator::OpStats stats =
        c.RunCheckpoint({c.MemberFor(0, id)}, options);
    result.disruption_ok = stats.success;
  } else {
    ckpt::LiveMigrateOptions options;
    options.hot_window = 200 * kMicrosecond;
    bool done = false;
    ckpt::LiveMigrator::MigrateWithMode(
        c.pods(0), c.pods(1), id, spec.mode, options,
        [&](const ckpt::LiveMigrateStats& s) {
          result.disruption_ok = s.downtime > 0 || s.total_duration > 0;
          done = true;
        });
    c.sim().RunWhile([&] { return done; },
                     c.sim().Now() + 600 * kSecond);
  }

  c.sim().RunWhile([&] { return lg.Done(); },
                   c.sim().Now() + 120 * kSecond);
  lg.Finish();

  result.violations = monitor.violations().size();
  result.worst_p95_ms = ToMillis(static_cast<DurationNs>(worst_p95));
  result.worst_p999_ms = ToMillis(static_cast<DurationNs>(worst_p999));
  result.recovery_ms =
      ToMillis(monitor.RecoveryToSlo("p95<5ms"));
  result.failures = lg.VerificationFailures();
  result.completed = lg.completed();
  result.expected = lg.expected();
  result.trace_jsonl = c.sim().tracer().ExportJsonl();

  const auto& ring = c.sim().tracer().events();
  obs::causal::CausalGraph graph = obs::causal::CausalGraph::Build(
      std::vector<obs::TraceEvent>(ring.begin(), ring.end()));
  obs::causal::CriticalPathAnalyzer analyzer(graph);
  std::vector<obs::causal::OpBreakdown> ops = analyzer.AnalyzeAll();
  result.crosscheck_ok = !ops.empty();
  for (const obs::causal::OpBreakdown& op : ops) {
    DurationNs attributed_total = 0;
    for (const auto& p : op.phases) attributed_total += p.total;
    if (attributed_total != op.wall()) result.crosscheck_ok = false;
    // The <= 1% unattributed bound applies to coordination ops, whose
    // whole wall is protocol time. A live-migration op's wall includes
    // the live copy rounds — time the pod runs undisturbed — which the
    // analyzer deliberately leaves unattributed.
    bool coordination = op.kind == "checkpoint" || op.kind == "restart";
    if (coordination && op.unattributed * 100 > op.wall()) {
      result.crosscheck_ok = false;
    }
  }
  obs::causal::SloReport report =
      obs::causal::BuildSloReport(graph, ops);
  result.attributed = report.attributed;
  result.report = obs::causal::RenderSloReport(report);
  for (const obs::causal::SloAttribution& a : report.violations) {
    if (a.phase != "unattributed") result.op_charged = true;
  }
  return result;
}

}  // namespace

int main() {
  const bool smoke = cruz::bench::BenchSmoke();
  std::printf("== SLO violation sweep (open-loop kvstore load)%s ==\n\n",
              smoke ? " [smoke]" : "");
  std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{2048}
            : std::vector<std::uint64_t>{2048, 8192};
  const ScenarioSpec kScenarios[] = {
      {"stw_checkpoint", true, false, ckpt::MigrateMode::kStopAndCopy},
      {"cow_checkpoint", true, true, ckpt::MigrateMode::kStopAndCopy},
      {"stop_and_copy", false, false, ckpt::MigrateMode::kStopAndCopy},
      {"pre_copy", false, false, ckpt::MigrateMode::kPreCopy},
      {"post_copy", false, false, ckpt::MigrateMode::kPostCopy},
      {"hybrid", false, false, ckpt::MigrateMode::kHybrid},
  };

  bool ok = true;
  struct Row {
    std::uint64_t pages;
    const ScenarioSpec* spec;
    ScenarioResult r;
  };
  std::vector<Row> rows;
  for (std::uint64_t pages : sizes) {
    std::printf("-- pod ballast %.0f MiB --\n",
                static_cast<double>(pages * os::kPageSize) /
                    static_cast<double>(kMiB));
    std::printf("%16s %11s %14s %15s %13s %11s\n", "scenario",
                "violations", "worst_p95(ms)", "worst_p999(ms)",
                "recovery(ms)", "attributed");
    ScenarioResult stw;
    ScenarioResult cow;
    for (const ScenarioSpec& spec : kScenarios) {
      ScenarioResult r = Measure(spec, pages);
      std::printf("%16s %11zu %14.3f %15.3f %13.1f %11zu\n", spec.name,
                  r.violations, r.worst_p95_ms, r.worst_p999_ms,
                  r.recovery_ms, r.attributed);
      bool scenario_ok = r.disruption_ok && r.failures == 0 &&
                         r.completed == r.expected && r.crosscheck_ok &&
                         r.attributed == r.violations;
      if (std::string(spec.name) == "stw_checkpoint") stw = r;
      if (std::string(spec.name) == "cow_checkpoint") cow = r;
      if (!scenario_ok) {
        ok = false;
        std::printf(
            "  checks: disruption=%d failures=%llu completed=%llu/%llu "
            "crosscheck=%d attributed=%zu/%zu\n",
            r.disruption_ok,
            static_cast<unsigned long long>(r.failures),
            static_cast<unsigned long long>(r.completed),
            static_cast<unsigned long long>(r.expected), r.crosscheck_ok,
            r.attributed, r.violations);
        std::string path =
            std::string("slo_trace_") + spec.name + ".jsonl";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f != nullptr) {
          std::fwrite(r.trace_jsonl.data(), 1, r.trace_jsonl.size(), f);
          std::fclose(f);
          std::printf("  shape check FAILED, trace -> %s\n",
                      path.c_str());
        }
      }
      rows.push_back(Row{pages, &spec, std::move(r)});
    }
    // The paper's differential: a stop-the-world save breaches the
    // objective through queueing, copy-on-write must stay compliant.
    if (stw.violations < 1 || !stw.op_charged ||
        cow.violations >= stw.violations) {
      ok = false;
    }
    for (const Row& row : rows) {
      if (row.pages != pages || row.r.report.empty()) continue;
      std::printf("\n%s attribution:\n%s", row.spec->name,
                  row.r.report.c_str());
    }
    std::printf("\n");
  }
  std::printf("shape check: %s\n",
              ok ? "stop-the-world breaches and is attributed, "
                   "copy-on-write stays compliant, every violation "
                   "window joined to a phase, critical-path tiling "
                   "exact, zero verification failures"
                 : "UNEXPECTED");

  std::FILE* gate = std::fopen("BENCH_slo.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate, "{\"bench\": \"slo\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"lower\"}",
                   first ? "" : ",\n", name.c_str(), value, unit);
      first = false;
    };
    for (const Row& row : rows) {
      std::string suffix = "_p" + std::to_string(row.pages);
      std::string base = row.spec->name;
      metric(base + "_violation_windows" + suffix,
             static_cast<double>(row.r.violations), "windows");
      metric(base + "_worst_p95_ms" + suffix, row.r.worst_p95_ms, "ms");
      metric(base + "_worst_p999_ms" + suffix, row.r.worst_p999_ms,
             "ms");
      metric(base + "_recovery_ms" + suffix, row.r.recovery_ms, "ms");
    }
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
    std::printf("wrote BENCH_slo.json\n");
  }
  return ok ? 0 : 1;
}
