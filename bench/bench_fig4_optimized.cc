// Fig. 4 optimization: with the blocking protocol (Fig. 2) every node
// stays stopped until ALL nodes finish their local checkpoints; with the
// optimized protocol a node resumes as soon as its own save completes
// (once the coordinator has confirmed communication is disabled
// everywhere).
//
// To expose the difference, the cluster is heterogeneous: node 1 has a
// disk 8x slower than the others. Each node runs a counter pod; the
// per-pod stall (the interval during which its counter does not advance
// around the checkpoint) is measured for both protocol variants. Under
// Fig. 2 every pod stalls for ~the slowest node's save; under Fig. 4 the
// fast nodes stall only for their own save.
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"

namespace {

using namespace cruz;

struct StallResult {
  std::vector<double> stall_ms;  // per node
  double latency_ms = 0;
};

StallResult MeasureStalls(coord::ProtocolVariant variant) {
  constexpr std::uint32_t kNodes = 4;
  ClusterConfig config;
  config.num_nodes = kNodes;
  config.node_template.disk_write_bytes_per_sec = 8 * kMiB;
  Cluster cluster(config);
  cluster.node(0).set_disk_write_bytes_per_sec(1 * kMiB);  // the straggler

  std::vector<os::PodId> pods;
  std::vector<os::Pid> vpids;
  std::vector<coord::Coordinator::Member> members;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    pods.push_back(cluster.CreatePod(i, "cnt" + std::to_string(i)));
    vpids.push_back(cluster.pods(i).SpawnInPod(
        pods.back(), "cruz.counter", apps::CounterArgs(1u << 30)));
    members.push_back(cluster.MemberFor(i, pods.back()));
  }
  cluster.sim().RunFor(100 * kMillisecond);

  // Sample each counter every 500 us; a stall is a maximal run of samples
  // with no progress around the checkpoint.
  struct Track {
    std::vector<std::pair<TimeNs, std::uint64_t>> samples;
  };
  std::vector<Track> tracks(kNodes);
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) return;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      os::Pid real = cluster.pods(i).ToRealPid(pods[i], vpids[i]);
      os::Process* proc = cluster.node(i).os().FindProcess(real);
      if (proc != nullptr) {
        tracks[i].samples.emplace_back(cluster.sim().Now(),
                                       apps::ReadCounter(*proc));
      }
    }
    cluster.sim().Schedule(500 * kMicrosecond, sample);
  };
  cluster.sim().Schedule(0, sample);

  coord::Coordinator::Options options;
  options.variant = variant;
  options.image_prefix = variant == coord::ProtocolVariant::kOptimized
                             ? "/ckpt/fig4opt"
                             : "/ckpt/fig4blk";
  auto stats = cluster.RunCheckpoint(members, options);
  cluster.sim().RunFor(2 * kSecond);
  sampling = false;
  cluster.sim().RunFor(2 * kMillisecond);

  StallResult result;
  result.latency_ms = ToMillis(stats.checkpoint_latency);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    TimeNs stall_start = 0, stall_end = 0, longest = 0;
    const auto& s = tracks[i].samples;
    for (std::size_t k = 1; k < s.size(); ++k) {
      if (s[k].second == s[k - 1].second) {
        if (stall_start == 0) stall_start = s[k - 1].first;
        stall_end = s[k].first;
        longest = std::max<TimeNs>(longest, stall_end - stall_start);
      } else {
        stall_start = 0;
      }
    }
    result.stall_ms.push_back(ToMillis(longest));
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Fig. 4 optimization: per-node stall during a "
              "coordinated checkpoint ==\n");
  std::printf("(4 nodes; node1's disk is 8x slower than the others)\n\n");

  StallResult blocking =
      MeasureStalls(cruz::coord::ProtocolVariant::kBlocking);
  StallResult optimized =
      MeasureStalls(cruz::coord::ProtocolVariant::kOptimized);

  std::printf("%8s %22s %22s\n", "node", "blocking stall (ms)",
              "optimized stall (ms)");
  for (std::size_t i = 0; i < blocking.stall_ms.size(); ++i) {
    std::printf("%8zu %22.1f %22.1f\n", i + 1, blocking.stall_ms[i],
                optimized.stall_ms[i]);
  }
  std::printf("\ncheckpoint latency: blocking %.1f ms, optimized %.1f "
              "ms\n",
              blocking.latency_ms, optimized.latency_ms);

  // Shape: under Fig. 2, fast nodes stall ~ as long as the slow node;
  // under Fig. 4, fast nodes stall only for their own (short) save.
  double fast_blocking = blocking.stall_ms[1];
  double fast_optimized = optimized.stall_ms[1];
  double slow_blocking = blocking.stall_ms[0];
  bool ok = fast_blocking > 0.7 * slow_blocking &&
            fast_optimized < 0.5 * fast_blocking;
  std::printf("\npaper: the optimization lets nodes continue without "
              "waiting for all checkpoints to complete\n");
  std::printf("shape check: fast nodes stalled %.1f ms under Fig. 2 vs "
              "%.1f ms under Fig. 4 (%s)\n",
              fast_blocking, fast_optimized,
              ok ? "optimization effective" : "NO BENEFIT");
  return ok ? 0 : 1;
}
