// Coordinator scale sweep: flat vs hierarchical coordination at up to
// ~1000 nodes (DESIGN.md §13).
//
// The flat protocol is already O(N) in messages (4 per member), but the
// root itself addresses all N agents and serializes 2N converging reply
// datagrams through one protocol stack, so coordination latency grows
// linearly with N. The sub-coordinator tree keeps the message count
// O(N) — 4 per member plus 4 per shard, ≤ 6N for any fan-out ≥ 2 (the
// documented constant c = 6) — while bounding every endpoint's fan-out
// by max(⌈N/F⌉, F), ≈ 2√N at F = √N.
//
// For each N the bench runs one coordinated checkpoint flat and one
// hierarchical (fan-out 32), counts real protocol messages (shard-local
// traffic is reported upward by the sub-coordinators and folded into
// total_messages), and re-derives the hierarchical op's latency from the
// causal critical path: phase totals must tile the coord.op span exactly
// and agree with the coordinator's own full_latency within 1%, with the
// shard-wait phase attributing the sub-coordinator aggregation time.
//
// Emits BENCH_coordinator_scale.json for the regression gate
// (check_regression.py). CRUZ_BENCH_SMOKE=1 stops the sweep at N = 128;
// the committed baseline is generated in smoke mode, so the nightly
// N = 1000 points show up as NEW (informational) rather than gated.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"
#include "obs/causal/causal_graph.h"
#include "obs/causal/critical_path.h"
#include "obs/causal/flight_recorder.h"
#include "slm_sweep.h"

namespace {

using namespace cruz;

struct ScaleResult {
  std::uint32_t nodes = 0;
  std::uint32_t fan_out = 0;  // 0 = flat
  bool success = false;
  std::uint32_t total_messages = 0;
  std::uint32_t shard_count = 0;
  std::uint32_t max_endpoint_fanout = 0;
  double latency_ms = 0;  // coordinator full_latency
  // Causal critical-path re-derivation of the same op.
  bool cp_ok = false;
  double cp_shard_wait_us = 0;
  double cp_commit_wait_us = 0;
  double cp_freeze_wait_us = 0;
  double cp_save_ms = 0;
};

// Failure artifacts (the nightly CI sweep uploads these): the raw trace
// ring as JSONL (cruz_analyze-compatible) and a flight recording of the
// pre-fault window with its causal slice.
void DumpFailureArtifacts(Cluster& cluster,
                          const coord::Coordinator::OpStats& stats,
                          std::uint32_t nodes, std::uint32_t fan_out,
                          const char* kind) {
  std::string tag =
      "scale_n" + std::to_string(nodes) + "_f" + std::to_string(fan_out);
  std::ofstream("trace_" + tag + ".jsonl")
      << cluster.sim().tracer().ExportJsonl();
  obs::causal::FlightTrigger trigger;
  trigger.ts = cluster.sim().Now();
  trigger.op = stats.op_id;
  trigger.kind = kind;
  trigger.detail = stats.abort_reason;
  const auto& ring = cluster.sim().tracer().events();
  std::ofstream("flight_" + tag + ".json") << obs::causal::FlightRecorder::
      Capture(std::vector<obs::TraceEvent>(ring.begin(), ring.end()),
              trigger);
  std::printf("  wrote trace_%s.jsonl + flight_%s.json\n", tag.c_str(),
              tag.c_str());
}

ScaleResult RunScale(std::uint32_t nodes, std::uint32_t fan_out) {
  ScaleResult result;
  result.nodes = nodes;
  result.fan_out = fan_out;

  ClusterConfig config;
  config.num_nodes = nodes;
  Cluster cluster(config);
  // One checkpoint at N = 1000 emits tens of thousands of span/instant
  // events; keep the whole op in the ring for the causal analysis.
  cluster.sim().tracer().set_capacity(1u << 20);
  // Serialized per-datagram protocol processing (see slm_sweep.h): this
  // is what makes the flat root's 2N converging replies a bottleneck.
  bench::CalibrateUdpProcessing(cluster);

  std::vector<coord::Coordinator::Member> members;
  members.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    os::PodId pod = cluster.CreatePod(i, "p" + std::to_string(i));
    cluster.pods(i).SpawnInPod(pod, "cruz.counter",
                               apps::CounterArgs(1u << 30));
    members.push_back(cluster.MemberFor(i, pod));
  }
  cluster.sim().RunFor(10 * kMillisecond);

  coord::Coordinator::Options options;
  options.fan_out = fan_out;
  options.image_prefix =
      "/ckpt/scale_n" + std::to_string(nodes) + "_f" +
      std::to_string(fan_out);
  auto stats = cluster.RunCheckpoint(members, options);
  result.success = stats.success;
  result.total_messages = stats.total_messages;
  result.shard_count = stats.shard_count;
  result.max_endpoint_fanout = stats.max_endpoint_fanout;
  result.latency_ms = ToMillis(stats.full_latency);
  if (!stats.success) {
    DumpFailureArtifacts(cluster, stats, nodes, fan_out, "op-failed");
    return result;
  }

  const auto& ring = cluster.sim().tracer().events();
  obs::causal::CausalGraph graph = obs::causal::CausalGraph::Build(
      std::vector<obs::TraceEvent>(ring.begin(), ring.end()));
  std::optional<obs::causal::OpBreakdown> b =
      graph.stats().mis_joins == 0
          ? obs::causal::CriticalPathAnalyzer(graph).AnalyzeOp(stats.op_id)
          : std::nullopt;
  if (b.has_value()) {
    DurationNs attributed = 0;
    for (const obs::causal::PhaseTotal& p : b->phases) attributed += p.total;
    DurationNs wall = b->wall();
    DurationNs full = stats.full_latency;
    DurationNs drift = wall > full ? wall - full : full - wall;
    result.cp_ok =
        attributed == wall && full > 0 && drift <= full / 100;
    result.cp_shard_wait_us = ToMicros(b->PhaseNs("shard-wait"));
    result.cp_commit_wait_us = ToMicros(b->PhaseNs("commit-wait"));
    result.cp_freeze_wait_us = ToMicros(b->PhaseNs("freeze-wait"));
    result.cp_save_ms = ToMillis(b->PhaseNs("save-downtime") +
                                 b->PhaseNs("save-background"));
  }
  if (fan_out != 0 && !result.cp_ok) {
    DumpFailureArtifacts(cluster, stats, nodes, fan_out,
                         "critical-path-mismatch");
  }
  return result;
}

}  // namespace

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  const bool smoke = BenchSmoke();
  constexpr std::uint32_t kFanOut = 32;
  std::vector<std::uint32_t> sweep = {32, 128};
  if (!smoke) {
    sweep.push_back(512);
    sweep.push_back(1000);
  }

  std::printf("== Coordinator scale: flat vs hierarchical (fan-out %u)%s "
              "==\n\n",
              kFanOut, smoke ? " [smoke]" : "");
  std::printf("%6s %6s %10s %8s %8s %14s %16s\n", "nodes", "mode", "msgs",
              "shards", "fanout", "latency (ms)", "shard-wait (us)");

  bool ok = true;
  std::vector<ScaleResult> results;
  for (std::uint32_t n : sweep) {
    for (std::uint32_t f : {0u, kFanOut}) {
      ScaleResult r = RunScale(n, f);
      std::printf("%6u %6s %10u %8u %8u %14.3f %16.1f\n", n,
                  f == 0 ? "flat" : "hier", r.total_messages, r.shard_count,
                  r.max_endpoint_fanout, r.latency_ms,
                  f == 0 ? 0.0 : r.cp_shard_wait_us);
      if (!r.success) {
        std::printf("  UNEXPECTED: op failed at n=%u f=%u\n", n, f);
        ok = false;
        continue;
      }
      if (f == 0) {
        // Flat: exactly 4 messages per member, root addresses all N.
        if (r.total_messages != 4 * n) {
          std::printf("  UNEXPECTED: flat messages %u != 4N\n",
                      r.total_messages);
          ok = false;
        }
        if (r.max_endpoint_fanout != n) {
          std::printf("  UNEXPECTED: flat root fan-out %u != N\n",
                      r.max_endpoint_fanout);
          ok = false;
        }
      } else {
        // Hierarchical: still O(N) — 4 per member + 4 per shard ≤ 6N
        // (c = 6 for any fan-out ≥ 2) — with bounded endpoint fan-out.
        std::uint32_t shards = (n + f - 1) / f;
        std::uint32_t fanout_bound = shards > f ? shards : f;
        if (r.total_messages > 6 * n) {
          std::printf("  UNEXPECTED: hier messages %u > 6N\n",
                      r.total_messages);
          ok = false;
        }
        if (r.max_endpoint_fanout > fanout_bound) {
          std::printf("  UNEXPECTED: hier fan-out %u > max(⌈N/F⌉, F) = %u\n",
                      r.max_endpoint_fanout, fanout_bound);
          ok = false;
        }
        if (r.shard_count != shards) {
          std::printf("  UNEXPECTED: shard count %u != ⌈N/F⌉ = %u\n",
                      r.shard_count, shards);
          ok = false;
        }
        if (!r.cp_ok) {
          std::printf("  UNEXPECTED: critical-path phases do not tile the "
                      "op span within 1%% of coordinator latency\n");
          ok = false;
        }
      }
      results.push_back(r);
    }
  }

  // The payoff: past the point where the tree has several shards, the
  // root's serialized reply processing dominates flat latency and the
  // hierarchy wins.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const ScaleResult& flat = results[i];
    const ScaleResult& hier = results[i + 1];
    if (flat.nodes >= 512 && hier.latency_ms >= flat.latency_ms) {
      std::printf("UNEXPECTED: hier latency %.3f ms >= flat %.3f ms at "
                  "n=%u\n",
                  hier.latency_ms, flat.latency_ms, flat.nodes);
      ok = false;
    }
  }

  std::printf("\nshape check: %s\n",
              ok ? "flat = 4N msgs with root fan-out N; hier <= 6N msgs "
                   "with fan-out <= max(ceil(N/F), F) and exact "
                   "critical-path tiling"
                 : "UNEXPECTED RESULTS");

  std::FILE* gate = std::fopen("BENCH_coordinator_scale.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate,
                 "{\"bench\": \"coordinator_scale\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit, const char* direction) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"%s\"}",
                   first ? "" : ",\n", name.c_str(), value, unit,
                   direction);
      first = false;
    };
    for (const ScaleResult& r : results) {
      std::string tag = std::string(r.fan_out == 0 ? "flat" : "hier") +
                        "_n" + std::to_string(r.nodes);
      metric("messages_" + tag, r.total_messages, "msgs", "lower");
      metric("max_endpoint_fanout_" + tag, r.max_endpoint_fanout, "dsts",
             "lower");
      metric("latency_" + tag, r.latency_ms, "ms", "lower");
      if (r.fan_out != 0) {
        metric("cp_shard_wait_" + tag, r.cp_shard_wait_us, "us", "lower");
        metric("cp_commit_wait_" + tag, r.cp_commit_wait_us, "us",
               "lower");
      }
    }
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
    std::printf("wrote BENCH_coordinator_scale.json\n");
  }
  return ok ? 0 : 1;
}
