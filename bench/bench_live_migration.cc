// Live-migration mode sweep under the streaming kvstore workload.
//
// The paper's migration use case (§1) is downtime-sensitive maintenance.
// A kv server pod is migrated while remote clients stream PUT/GET
// traffic at full rate; each MigrateMode trades downtime against
// post-resume degradation differently:
//
//   stop-and-copy — downtime is the whole image: grows with pod memory.
//   pre-copy      — iterative rounds; stops only for the final dirty
//                   set + kernel state, independent of ballast size.
//   post-copy     — stops for the hot set only; the residue is demand-
//                   fetched after resume (counted as degradation).
//   hybrid        — one pre-copy round, then post-copy: the stop moves
//                   kernel state only.
//
// The table sweeps pod ballast sizes; every metric is sim-time derived
// and deterministic. Emits BENCH_migration.json for check_regression.py.
// CRUZ_BENCH_SMOKE=1 runs the 4 MiB pod only (committed baselines are
// generated in that mode; full-sweep sizes show up as NEW,
// informational).
#include <cstdio>
#include <map>
#include <vector>

#include "apps/kvstore.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"
#include "slm_sweep.h"

namespace {

using namespace cruz;

constexpr std::uint64_t kBallastBase = 0x4000;
constexpr int kClients = 4;

struct ModeResult {
  ckpt::LiveMigrateStats stats;
  bool served_after = false;      // kv server made progress post-migrate
  std::uint64_t failures = 0;     // client-side GET verification failures
};

ModeResult Measure(std::uint64_t ballast_pages, ckpt::MigrateMode mode) {
  apps::RegisterKvPrograms();
  ModeResult result;
  ClusterConfig config;
  config.num_nodes = 3;
  Cluster c(config);
  os::PodId id = c.CreatePod(0, "kv");
  net::Ipv4Address db_ip = c.pods(0).Find(id)->ip;
  os::Pid server_vpid =
      c.pods(0).SpawnInPod(id, "cruz.kv_server", apps::KvServerArgs(5432));
  os::Process* server =
      c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, server_vpid));
  cruz::Bytes page(os::kPageSize, 0x42);
  for (std::uint64_t i = 0; i < ballast_pages; ++i) {
    server->memory().InstallPage(kBallastBase + i, page);
  }
  c.sim().RunFor(5 * kMillisecond);
  // Zero think time: the clients stream as fast as one op per RTT, so
  // the server's table churns through the whole migration window.
  std::vector<os::Pid> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(c.node(2).os().Spawn(
        "cruz.kv_client",
        apps::KvClientArgs(db_ip, 5432, 1u << 30, 1000 + i, 0)));
  }
  c.sim().RunFor(30 * kMillisecond);

  ckpt::LiveMigrateOptions options;
  options.hot_window = 200 * kMicrosecond;
  bool done = false;
  ckpt::LiveMigrator::MigrateWithMode(c.pods(0), c.pods(1), id, mode,
                                      options,
                                      [&](const ckpt::LiveMigrateStats& s) {
                                        result.stats = s;
                                        done = true;
                                      });
  c.sim().RunWhile([&] { return done; }, c.sim().Now() + 600 * kSecond);

  // The migrated server keeps serving: wait for full residency, then
  // require the request counter to advance (TCP recovers from the
  // blackout via retransmission).
  os::Process* moved =
      c.node(1).os().FindProcess(c.pods(1).ToRealPid(id, server_vpid));
  if (moved != nullptr) {
    c.sim().RunWhile([&] { return !moved->memory().HasMissingPages(); },
                     c.sim().Now() + 600 * kSecond);
    std::uint64_t served = apps::ReadKvServerRequests(*moved);
    c.sim().RunFor(2 * kSecond);
    result.served_after = apps::ReadKvServerRequests(*moved) > served;
  }
  for (os::Pid pid : clients) {
    os::Process* proc = c.node(2).os().FindProcess(pid);
    if (proc != nullptr) {
      result.failures += apps::ReadKvClientStatus(*proc)
                             .verification_failures;
    }
  }
  return result;
}

}  // namespace

int main() {
  const bool smoke = cruz::bench::BenchSmoke();
  std::printf("== Live-migration mode sweep (streaming kvstore)%s ==\n\n",
              smoke ? " [smoke]" : "");
  std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{1024}
            : std::vector<std::uint64_t>{1024, 4096, 16384};
  constexpr ckpt::MigrateMode kModes[] = {
      ckpt::MigrateMode::kStopAndCopy, ckpt::MigrateMode::kPreCopy,
      ckpt::MigrateMode::kPostCopy, ckpt::MigrateMode::kHybrid};

  bool ok = true;
  std::map<std::uint64_t, std::map<ckpt::MigrateMode, ModeResult>> table;
  for (std::uint64_t pages : sizes) {
    std::printf("-- pod ballast %.0f MiB --\n",
                static_cast<double>(pages * os::kPageSize) /
                    static_cast<double>(kMiB));
    std::printf("%15s %13s %11s %16s %9s %8s\n", "mode", "downtime(ms)",
                "total(ms)", "degradation(ms)", "fetched", "rounds");
    for (ckpt::MigrateMode mode : kModes) {
      ModeResult r = Measure(pages, mode);
      table[pages][mode] = r;
      std::printf("%15s %13.3f %11.2f %16.3f %9llu %8d\n",
                  ckpt::MigrateModeName(mode), ToMillis(r.stats.downtime),
                  ToMillis(r.stats.total_duration),
                  ToMillis(r.stats.degradation),
                  static_cast<unsigned long long>(
                      r.stats.pages_fetched_on_demand),
                  r.stats.rounds);
      if (!r.served_after || r.failures != 0) ok = false;
    }
    const ModeResult& stop = table[pages][ckpt::MigrateMode::kStopAndCopy];
    const ModeResult& pre = table[pages][ckpt::MigrateMode::kPreCopy];
    const ModeResult& post = table[pages][ckpt::MigrateMode::kPostCopy];
    const ModeResult& hybrid = table[pages][ckpt::MigrateMode::kHybrid];
    // The mode ladder: post-copy stops for the hot set, pre-copy for the
    // final dirty set, stop-and-copy for everything; hybrid for kernel
    // state only. Post-copy pays with demand-fetch degradation instead.
    if (!(post.stats.downtime < pre.stats.downtime &&
          pre.stats.downtime < stop.stats.downtime &&
          hybrid.stats.downtime <= post.stats.downtime)) {
      ok = false;
    }
    if (post.stats.degradation <= 0 || stop.stats.degradation != 0 ||
        pre.stats.degradation != 0) {
      ok = false;
    }
    for (const ModeResult* r : {&post, &hybrid}) {
      if (r->stats.pages_resident_at_resume +
              r->stats.pages_fetched_on_demand + r->stats.pages_pushed !=
          r->stats.pages_total) {
        ok = false;
      }
      if (r->stats.late_serves != 0) ok = false;
    }
    std::printf("\n");
  }
  std::printf("shape check: %s\n",
              ok ? "downtime ladder post < pre < stop (hybrid <= post), "
                   "degradation only under post-copy, page accounting "
                   "balanced, server kept serving, zero client "
                   "verification failures"
                 : "UNEXPECTED");

  // Regression-gate metrics (sim-time, hence deterministic and exact).
  std::FILE* gate = std::fopen("BENCH_migration.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate, "{\"bench\": \"migration\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"lower\"}",
                   first ? "" : ",\n", name.c_str(), value, unit);
      first = false;
    };
    for (std::uint64_t pages : sizes) {
      std::string suffix = "_p" + std::to_string(pages);
      for (ckpt::MigrateMode mode : kModes) {
        const ModeResult& r = table[pages][mode];
        std::string m = ckpt::MigrateModeName(mode);
        for (char& ch : m) {
          if (ch == '-') ch = '_';
        }
        metric(m + "_downtime_ms" + suffix, ToMillis(r.stats.downtime),
               "ms");
      }
      const ModeResult& post = table[pages][ckpt::MigrateMode::kPostCopy];
      metric("post_copy_total_ms" + suffix,
             ToMillis(post.stats.total_duration), "ms");
      metric("post_copy_degradation_ms" + suffix,
             ToMillis(post.stats.degradation), "ms");
      metric("post_copy_pages_fetched" + suffix,
             static_cast<double>(post.stats.pages_fetched_on_demand),
             "pages");
    }
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
    std::printf("wrote BENCH_migration.json\n");
  }
  return ok ? 0 : 1;
}
