// Ablation: live (pre-copy) migration vs stop-and-copy, across pod sizes.
//
// The paper's migration use case (§1) is downtime-sensitive maintenance;
// stop-and-copy downtime grows linearly with the pod's memory, while
// pre-copy (built on the dirty-page tracking of the incremental
// checkpointing extension) moves memory while the pod runs and stops
// only for the final dirty set.
#include <cstdio>

#include "apps/programs.h"
#include "ckpt/live_migrate.h"
#include "cruz/cluster.h"

namespace {

using namespace cruz;

struct Row {
  double pod_mib;
  double naive_ms;
  double live_ms;
  int rounds;
};

Row Measure(std::uint64_t static_pages) {
  Row row{};
  row.pod_mib = static_cast<double>(static_pages * os::kPageSize) /
                static_cast<double>(kMiB);
  for (int mode = 0; mode < 2; ++mode) {
    ClusterConfig config;
    config.num_nodes = 2;
    Cluster c(config);
    os::PodId id = c.CreatePod(0, "pod");
    os::Pid vpid = c.pods(0).SpawnInPod(id, "cruz.counter",
                                        apps::CounterArgs(1u << 30));
    os::Process* proc =
        c.node(0).os().FindProcess(c.pods(0).ToRealPid(id, vpid));
    cruz::Bytes page(os::kPageSize, 0x42);
    for (std::uint64_t i = 0; i < static_pages; ++i) {
      proc->memory().InstallPage(0x1000 + i, page);
    }
    c.sim().RunFor(20 * kMillisecond);
    bool done = false;
    ckpt::LiveMigrateStats stats;
    auto on_done = [&](const ckpt::LiveMigrateStats& s) {
      stats = s;
      done = true;
    };
    if (mode == 0) {
      ckpt::LiveMigrator::StopAndCopy(c.pods(0), c.pods(1), id, {},
                                      on_done);
    } else {
      ckpt::LiveMigrator::Migrate(c.pods(0), c.pods(1), id, {}, on_done);
    }
    c.sim().RunWhile([&] { return done; }, c.sim().Now() + 600 * kSecond);
    if (mode == 0) {
      row.naive_ms = ToMillis(stats.downtime);
    } else {
      row.live_ms = ToMillis(stats.downtime);
      row.rounds = stats.rounds;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== Live (pre-copy) migration vs stop-and-copy ==\n\n");
  std::printf("%12s %22s %18s %8s\n", "pod (MiB)", "stop-and-copy (ms)",
              "pre-copy (ms)", "rounds");
  bool ok = true;
  for (std::uint64_t pages : {512u, 2048u, 8192u, 32768u}) {
    Row row = Measure(pages);
    std::printf("%12.0f %22.1f %18.2f %8d\n", row.pod_mib, row.naive_ms,
                row.live_ms, row.rounds);
    // Stop-and-copy downtime scales with memory; pre-copy downtime stays
    // roughly constant (final dirty set + kernel state only).
    if (row.live_ms > row.naive_ms / 5) ok = false;
  }
  std::printf("\nshape check: %s\n",
              ok ? "pre-copy downtime is independent of pod size "
                   "(stop-and-copy grows linearly)"
                 : "UNEXPECTED");
  return ok ? 0 : 1;
}
