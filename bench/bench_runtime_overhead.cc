// §6 runtime overhead: "The runtime overhead of Cruz is negligible (less
// than 0.5%) since the underlying Zap mechanism requires nothing more
// than virtualizing identifiers."
//
// Measures completion time of a syscall-intensive workload running inside
// a pod (every syscall passes through the interposition layer) versus the
// same workload as a plain process, across several syscall intensities.
#include <cstdio>

#include "apps/programs.h"
#include "cruz/cluster.h"

int main() {
  using namespace cruz;

  std::printf("== Runtime virtualization overhead (pod vs bare "
              "process) ==\n\n");
  std::printf("%22s %14s %14s %10s\n", "workload", "bare (ms)", "pod (ms)",
              "overhead");

  struct Case {
    const char* name;
    DurationNs cpu_per_iter;
    std::uint32_t syscalls_per_iter;
    // Realistic application mixes must stay under the paper's 0.5%;
    // the pathological microloop is included to show where the
    // interposition cost becomes visible, as it would on real Zap.
    bool realistic;
  };
  const Case cases[] = {
      {"cpu-bound (1 sys/50us)", 50 * kMicrosecond, 1, true},
      {"mixed (2 sys/25us)", 25 * kMicrosecond, 2, true},
      {"io-heavy (4 sys/45us)", 45 * kMicrosecond, 4, true},
      {"pathological (4/10us)", 10 * kMicrosecond, 4, false},
  };
  const std::uint64_t kIterations = 20000;

  bool all_ok = true;
  for (const Case& c : cases) {
    double duration_ms[2] = {0, 0};
    for (int in_pod = 0; in_pod <= 1; ++in_pod) {
      Cluster cluster;
      cruz::Bytes args =
          apps::SysbenchArgs(kIterations, c.cpu_per_iter,
                             c.syscalls_per_iter);
      os::Pid pid;
      if (in_pod) {
        os::PodId pod = cluster.CreatePod(0, "bench");
        os::Pid vpid =
            cluster.pods(0).SpawnInPod(pod, "cruz.sysbench", args);
        pid = cluster.pods(0).ToRealPid(pod, vpid);
      } else {
        pid = cluster.node(0).os().Spawn("cruz.sysbench", args);
      }
      TimeNs start = cluster.sim().Now();
      TimeNs finished = 0;
      cluster.node(0).os().set_process_exit_hook(
          [&](os::Pid p, int) {
            if (p == pid) finished = cluster.sim().Now();
          });
      cluster.sim().RunWhile([&] { return finished != 0; },
                             cluster.sim().Now() + 3600 * kSecond);
      duration_ms[in_pod] = ToMillis(finished - start);
    }
    double overhead =
        (duration_ms[1] - duration_ms[0]) / duration_ms[0];
    std::printf("%22s %14.2f %14.2f %9.3f%%%s\n", c.name, duration_ms[0],
                duration_ms[1], overhead * 100.0,
                c.realistic ? "" : "  (stress case)");
    if (c.realistic && overhead >= 0.005) all_ok = false;
  }
  std::printf("\npaper: < 0.5%% (identifier virtualization only)\n");
  std::printf("shape check: %s\n",
              all_ok ? "all realistic workloads under 0.5% overhead"
                     : "OVERHEAD TOO HIGH");
  return all_ok ? 0 : 1;
}
