// Fig. 6: effect of dropped packets on a TCP stream's flow rate across a
// coordinated checkpoint.
//
// Paper result (gigabit ethernet, two nodes): the receive rate drops to
// zero when the checkpoint starts at t=0 (the agents' packet filters
// silently drop all pod traffic); the checkpoint completes after ~120 ms;
// a short pulse appears as the receiver drains data that arrived before
// the checkpoint; the sender stays quiet until its retransmission timer
// recovers the dropped packets (~100 ms after communication resumes);
// then the flow returns to the full pre-checkpoint rate.
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"

int main() {
  using namespace cruz;

  std::printf("== Fig. 6: TCP stream rate across a coordinated "
              "checkpoint ==\n\n");

  ClusterConfig config;
  config.num_nodes = 2;
  // Checkpoint duration calibrated to the paper's ~120 ms: the streaming
  // pod's state is small, so a modest disk rate gives a 100-150 ms write.
  config.node_template.disk_write_bytes_per_sec = 4 * kMiB;
  // The paper's stack recovered the dropped packets ~100 ms after
  // communication resumed. The sender's silence ends one retransmission
  // timeout after its last timer restart; a 75 ms minimum RTO reproduces
  // the paper's ~100 ms effective recovery delay under this timing.
  config.node_template.tcp.min_rto = 75 * kMillisecond;
  Cluster cluster(config);

  os::PodId recv_pod = cluster.CreatePod(1, "recv");
  net::Ipv4Address recv_ip = cluster.pods(1).Find(recv_pod)->ip;
  // Bursty consumer (drains every 200 us): the receive buffer holds data
  // at any instant, so the checkpoint captures undelivered bytes and the
  // restored/resumed receiver drains them in one burst — the paper's
  // short "pulse" right after the checkpoint completes.
  os::Pid recv_vpid = cluster.pods(1).SpawnInPod(
      recv_pod, "cruz.stream_receiver",
      apps::StreamReceiverArgs(9100, 200 * kMicrosecond, 32 * 1024));
  cluster.sim().RunFor(5 * kMillisecond);
  os::PodId send_pod = cluster.CreatePod(0, "send");
  os::Pid send_vpid = cluster.pods(0).SpawnInPod(
      send_pod, "cruz.stream_sender",
      apps::StreamSenderArgs(recv_ip, 9100, 0));

  // Ballast: give each process a realistic working set (~460 KiB) so the
  // local checkpoint (write to disk) takes the paper's ~120 ms.
  cruz::Bytes ballast_page(os::kPageSize, 0x77);
  auto add_ballast = [&](std::size_t node, os::PodId pod, os::Pid vpid) {
    os::Pid real = cluster.pods(node).ToRealPid(pod, vpid);
    os::Process* proc = cluster.node(node).os().FindProcess(real);
    for (std::uint64_t i = 0; i < 115; ++i) {
      proc->memory().InstallPage(0x2000 + i, ballast_page);
    }
  };
  add_ballast(0, send_pod, send_vpid);
  add_ballast(1, recv_pod, recv_vpid);

  auto delivered = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).bytes : 0ull;
  };
  auto mismatches = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).mismatches
                           : ~0ull;
  };

  cluster.sim().RunWhile([&] { return delivered() > 4 * kMiB; },
                         cluster.sim().Now() + 60 * kSecond);

  // Sample delivered bytes every 1 ms from t=-50 ms to t=+450 ms around
  // the checkpoint; report the 10 ms sliding-window rate as the paper
  // does.
  struct Sample {
    double t_ms;
    std::uint64_t bytes;
  };
  std::vector<Sample> samples;
  TimeNs t0 = cluster.sim().Now() + 50 * kMillisecond;
  for (TimeNs t = t0 - 50 * kMillisecond; t <= t0 + 450 * kMillisecond;
       t += kMillisecond) {
    cluster.sim().ScheduleAt(t, [&, t] {
      samples.push_back(
          Sample{(static_cast<double>(t) - static_cast<double>(t0)) / 1e6,
                 delivered()});
    });
  }
  coord::Coordinator::OpStats stats;
  bool done = false;
  cluster.sim().ScheduleAt(t0, [&] {
    cluster.coordinator().Checkpoint(
        {cluster.MemberFor(0, send_pod), cluster.MemberFor(1, recv_pod)},
        {}, [&](const coord::Coordinator::OpStats& s) {
          stats = s;
          done = true;
        });
  });
  cluster.sim().RunFor(600 * kMillisecond);

  std::printf("%10s %14s\n", "t (ms)", "rate (Mb/s)");
  auto window_rate = [&](std::size_t i) {
    double bytes = static_cast<double>(samples[i].bytes) -
                   static_cast<double>(samples[i - 10].bytes);
    return bytes * 8.0 / 10e-3 / 1e6;
  };
  for (std::size_t i = 10; i < samples.size(); i += 5) {
    std::printf("%10.0f %14.1f\n", samples[i].t_ms, window_rate(i));
  }

  // Shape analysis.
  double pre_rate = 0;
  int pre_count = 0;
  for (std::size_t i = 10; i < samples.size(); ++i) {
    if (samples[i].t_ms < 0) {
      pre_rate += window_rate(i);
      ++pre_count;
    }
  }
  pre_rate /= pre_count;
  double stalled_at = -1, recovered_at = -1, post_rate = 0;
  int post_count = 0;
  for (std::size_t i = 10; i < samples.size(); ++i) {
    double t = samples[i].t_ms;
    double rate = window_rate(i);
    if (t > 0 && stalled_at < 0 && rate < 0.05 * pre_rate) stalled_at = t;
    if (stalled_at > 0 && recovered_at < 0 &&
        t > ToMillis(stats.checkpoint_latency) && rate > 0.5 * pre_rate) {
      recovered_at = t;
    }
    if (recovered_at > 0 && t > recovered_at + 50) {
      post_rate += rate;
      ++post_count;
    }
  }
  if (post_count > 0) post_rate /= post_count;

  std::printf("\ncheckpoint latency: %.0f ms (paper: ~120 ms)\n",
              ToMillis(stats.checkpoint_latency));
  std::printf("rate before checkpoint: %.0f Mb/s\n", pre_rate);
  std::printf("flow stalled at t=%.0f ms; recovered at t=%.0f ms "
              "(~%.0f ms after checkpoint completion; paper: ~100 ms, "
              "set by TCP's retransmission backoff)\n",
              stalled_at, recovered_at,
              recovered_at - ToMillis(stats.checkpoint_latency));
  std::printf("rate after recovery: %.0f Mb/s; corrupted bytes: %llu\n",
              post_rate, static_cast<unsigned long long>(mismatches()));

  bool ok = done && stalled_at >= 0 && recovered_at > stalled_at &&
            post_rate > 0.8 * pre_rate && mismatches() == 0 &&
            recovered_at - ToMillis(stats.checkpoint_latency) < 400;
  std::printf("\nshape check: %s\n", ok ? "matches Fig. 6" : "MISMATCH");
  return ok ? 0 : 1;
}
