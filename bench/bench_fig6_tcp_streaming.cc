// Fig. 6: effect of dropped packets on a TCP stream's flow rate across a
// coordinated checkpoint.
//
// Paper result (gigabit ethernet, two nodes): the receive rate drops to
// zero when the checkpoint starts at t=0 (the agents' packet filters
// silently drop all pod traffic); the checkpoint completes after ~120 ms;
// a short pulse appears as the receiver drains data that arrived before
// the checkpoint; the sender stays quiet until its retransmission timer
// recovers the dropped packets (~100 ms after communication resumes);
// then the flow returns to the full pre-checkpoint rate.
//
// The stall-and-recover timeline is read from the trace, not from rate
// thresholds: the stall begins at the coord.phase.freeze span (filter
// install), communication returns at the last agent.resume instant, and
// recovery completes at the sender's tcp.recovered instant (first
// cumulative ACK advance after the RTO episode). The sampled rate table
// remains the paper's figure; the spans explain it. The full trace is
// written to BENCH_fig6_trace.json and gate metrics to BENCH_fig6.json.
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "cruz/cluster.h"
#include "obs/trace_query.h"

int main() {
  using namespace cruz;

  std::printf("== Fig. 6: TCP stream rate across a coordinated "
              "checkpoint ==\n\n");

  ClusterConfig config;
  config.num_nodes = 2;
  // Checkpoint duration calibrated to the paper's ~120 ms: the streaming
  // pod's state is small, so a modest disk rate gives a 100-150 ms write.
  config.node_template.disk_write_bytes_per_sec = 4 * kMiB;
  // The paper's stack recovered the dropped packets ~100 ms after
  // communication resumed. The sender's silence ends one retransmission
  // timeout after its last timer restart; a 75 ms minimum RTO reproduces
  // the paper's ~100 ms effective recovery delay under this timing.
  config.node_template.tcp.min_rto = 75 * kMillisecond;
  Cluster cluster(config);

  os::PodId recv_pod = cluster.CreatePod(1, "recv");
  net::Ipv4Address recv_ip = cluster.pods(1).Find(recv_pod)->ip;
  // Bursty consumer (drains every 200 us): the receive buffer holds data
  // at any instant, so the checkpoint captures undelivered bytes and the
  // restored/resumed receiver drains them in one burst — the paper's
  // short "pulse" right after the checkpoint completes.
  os::Pid recv_vpid = cluster.pods(1).SpawnInPod(
      recv_pod, "cruz.stream_receiver",
      apps::StreamReceiverArgs(9100, 200 * kMicrosecond, 32 * 1024));
  cluster.sim().RunFor(5 * kMillisecond);
  os::PodId send_pod = cluster.CreatePod(0, "send");
  os::Pid send_vpid = cluster.pods(0).SpawnInPod(
      send_pod, "cruz.stream_sender",
      apps::StreamSenderArgs(recv_ip, 9100, 0));

  // Ballast: give each process a realistic working set (~460 KiB) so the
  // local checkpoint (write to disk) takes the paper's ~120 ms.
  cruz::Bytes ballast_page(os::kPageSize, 0x77);
  auto add_ballast = [&](std::size_t node, os::PodId pod, os::Pid vpid) {
    os::Pid real = cluster.pods(node).ToRealPid(pod, vpid);
    os::Process* proc = cluster.node(node).os().FindProcess(real);
    for (std::uint64_t i = 0; i < 115; ++i) {
      proc->memory().InstallPage(0x2000 + i, ballast_page);
    }
  };
  add_ballast(0, send_pod, send_vpid);
  add_ballast(1, recv_pod, recv_vpid);

  auto delivered = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).bytes : 0ull;
  };
  auto mismatches = [&] {
    os::Pid real = cluster.pods(1).ToRealPid(recv_pod, recv_vpid);
    os::Process* proc = cluster.node(1).os().FindProcess(real);
    return proc != nullptr ? apps::ReadStreamStatus(*proc).mismatches
                           : ~0ull;
  };

  cluster.sim().RunWhile([&] { return delivered() > 4 * kMiB; },
                         cluster.sim().Now() + 60 * kSecond);

  // Sample delivered bytes every 1 ms from t=-50 ms to t=+450 ms around
  // the checkpoint; report the 10 ms sliding-window rate as the paper
  // does.
  struct Sample {
    double t_ms;
    std::uint64_t bytes;
  };
  std::vector<Sample> samples;
  TimeNs t0 = cluster.sim().Now() + 50 * kMillisecond;
  for (TimeNs t = t0 - 50 * kMillisecond; t <= t0 + 450 * kMillisecond;
       t += kMillisecond) {
    cluster.sim().ScheduleAt(t, [&, t] {
      samples.push_back(
          Sample{(static_cast<double>(t) - static_cast<double>(t0)) / 1e6,
                 delivered()});
    });
  }
  coord::Coordinator::OpStats stats;
  bool done = false;
  cluster.sim().ScheduleAt(t0, [&] {
    cluster.coordinator().Checkpoint(
        {cluster.MemberFor(0, send_pod), cluster.MemberFor(1, recv_pod)},
        {}, [&](const coord::Coordinator::OpStats& s) {
          stats = s;
          done = true;
        });
  });
  cluster.sim().RunFor(600 * kMillisecond);

  std::printf("%10s %14s\n", "t (ms)", "rate (Mb/s)");
  auto window_rate = [&](std::size_t i) {
    double bytes = static_cast<double>(samples[i].bytes) -
                   static_cast<double>(samples[i - 10].bytes);
    return bytes * 8.0 / 10e-3 / 1e6;
  };
  for (std::size_t i = 10; i < samples.size(); i += 5) {
    std::printf("%10.0f %14.1f\n", samples[i].t_ms, window_rate(i));
  }

  // --- span-derived timeline ----------------------------------------------
  obs::TraceQuery query(cluster.sim().tracer());
  auto rel_ms = [&](TimeNs ts) {
    return (static_cast<double>(ts) - static_cast<double>(t0)) / 1e6;
  };
  const obs::TraceEvent* freeze = query.First(
      obs::TraceQuery::Filter{}.Name("coord.phase.freeze").Op(
          stats.op_id));
  const obs::TraceEvent* resume = query.Last(
      obs::TraceQuery::Filter{}.Name("agent.resume").Op(stats.op_id));
  // The sender's loss episode: RTO expirations while the filters were
  // up, then the first advancing ACK after communication returned.
  std::size_t rto_count = 0;
  const obs::TraceEvent* recovered = nullptr;
  if (freeze != nullptr) {
    rto_count = query.CountBetween(
        obs::TraceQuery::Filter{}.Name("tcp.rto"), freeze->ts,
        cluster.sim().Now());
    for (const obs::TraceEvent* e :
         query.Named("tcp.recovered")) {
      if (e->ts >= freeze->ts) {
        recovered = e;
        break;
      }
    }
  }

  double stalled_at = freeze != nullptr ? rel_ms(freeze->ts) : -1;
  double resumed_at = resume != nullptr ? rel_ms(resume->ts) : -1;
  double recovered_at = recovered != nullptr ? rel_ms(recovered->ts) : -1;

  // Post-recovery rate from the sampled curve, bracketed by the trace.
  double pre_rate = 0, post_rate = 0;
  int pre_count = 0, post_count = 0;
  for (std::size_t i = 10; i < samples.size(); ++i) {
    double t = samples[i].t_ms;
    if (t < 0) {
      pre_rate += window_rate(i);
      ++pre_count;
    }
    if (recovered_at > 0 && t > recovered_at + 50) {
      post_rate += window_rate(i);
      ++post_count;
    }
  }
  if (pre_count > 0) pre_rate /= pre_count;
  if (post_count > 0) post_rate /= post_count;

  std::printf("\ncheckpoint latency: %.0f ms (paper: ~120 ms)\n",
              ToMillis(stats.checkpoint_latency));
  std::printf("rate before checkpoint: %.0f Mb/s\n", pre_rate);
  std::printf("trace timeline: filters up (freeze) at t=%.1f ms; pods "
              "resumed at t=%.1f ms; %zu sender RTOs; recovered "
              "(first advancing ACK) at t=%.1f ms (~%.0f ms after "
              "checkpoint completion; paper: ~100 ms, set by TCP's "
              "retransmission backoff)\n",
              stalled_at, resumed_at, rto_count, recovered_at,
              recovered_at - ToMillis(stats.checkpoint_latency));
  std::printf("rate after recovery: %.0f Mb/s; corrupted bytes: %llu\n",
              post_rate, static_cast<unsigned long long>(mismatches()));

  std::string trace = cluster.sim().tracer().ExportChromeJson();
  if (std::FILE* f = std::fopen("BENCH_fig6_trace.json", "w")) {
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_fig6_trace.json (%zu bytes)\n",
                trace.size());
  }
  if (std::FILE* gate = std::fopen("BENCH_fig6.json", "w")) {
    std::fprintf(
        gate,
        "{\"bench\": \"fig6\", \"metrics\": [\n"
        "  {\"name\": \"checkpoint_latency_ms\", \"value\": %.6f, "
        "\"unit\": \"ms\", \"direction\": \"lower\"},\n"
        "  {\"name\": \"recovery_after_completion_ms\", \"value\": %.6f, "
        "\"unit\": \"ms\", \"direction\": \"lower\"},\n"
        "  {\"name\": \"post_recovery_rate_mbps\", \"value\": %.6f, "
        "\"unit\": \"Mb/s\", \"direction\": \"higher\"}\n"
        "]}\n",
        ToMillis(stats.checkpoint_latency),
        recovered_at - ToMillis(stats.checkpoint_latency), post_rate);
    std::fclose(gate);
    std::printf("wrote BENCH_fig6.json\n");
  }

  bool ok = done && stalled_at >= 0 && resumed_at > stalled_at &&
            recovered_at > stalled_at && rto_count > 0 &&
            post_rate > 0.8 * pre_rate && mismatches() == 0 &&
            recovered_at - ToMillis(stats.checkpoint_latency) < 400;
  std::printf("\nshape check: %s\n", ok ? "matches Fig. 6" : "MISMATCH");
  return ok ? 0 : 1;
}
