// Fig. 5(b): coordination overhead of the distributed checkpoint. The
// paper sweeps 2-8 nodes; the full (non-smoke) run here continues to 16
// to show the linear trend holds — cheap now that the event queue is an
// indexed heap rather than a tombstoned priority_queue.
//
// Paper result: 350-550 us total — negligible against the ~1 s local
// checkpoint — growing by roughly 50 us per node beyond 4 nodes (the
// coordinator's serialized processing of converging <done>/<continue-done>
// datagrams). Overhead = full operation latency minus the maxima of the
// local checkpoint and continue times, exactly as §6 computes it.
//
// Emits BENCH_fig5b.json for the regression gate (check_regression.py).
// CRUZ_BENCH_SMOKE=1 shrinks the sweep for CI.
#include <cstdio>
#include <string>
#include <vector>

#include "slm_sweep.h"

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  const bool smoke = BenchSmoke();
  std::printf("== Fig. 5(b): coordination overhead (slm, checkpoints "
              "every 8 s)%s ==\n\n",
              smoke ? " [smoke]" : "");
  std::printf("%6s %20s %12s %10s\n", "nodes", "overhead (us)", "stddev",
              "samples");
  SweepOptions opt;
  if (smoke) {
    opt.max_nodes = 4;
    opt.app_duration = 16 * kSecond;
  } else {
    opt.max_nodes = 16;
  }
  std::vector<SweepResult> sweep;
  std::vector<double> overheads;
  for (std::uint32_t n = opt.min_nodes; n <= opt.max_nodes; ++n) {
    SweepResult r = RunSlmSweep(n, opt);
    std::printf("%6u %20.1f %12.2f %10u\n", r.nodes, r.mean_overhead_us,
                r.stddev_overhead_us, r.samples);
    overheads.push_back(r.mean_overhead_us);
    sweep.push_back(std::move(r));
  }
  std::printf("\npaper: 350-550 us total, increasing ~50 us per node "
              "beyond 4 nodes\n");
  double slope =
      (overheads.back() - overheads.front()) /
      static_cast<double>(opt.max_nodes - opt.min_nodes);
  bool microsecond_scale =
      overheads.front() > 100 && overheads.back() < 2000;
  bool grows_slowly = slope > 10 && slope < 200;
  std::printf("shape check: overhead is %s (sub-ms, vs ~1 s local "
              "checkpoint) and grows ~%.0f us/node (%s)\n",
              microsecond_scale ? "on the paper's scale" : "OFF SCALE",
              slope, grows_slowly ? "paper-like slope" : "UNEXPECTED");

  std::FILE* gate = std::fopen("BENCH_fig5b.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate, "{\"bench\": \"fig5b\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit, const char* direction) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"%s\"}",
                   first ? "" : ",\n", name.c_str(), value, unit,
                   direction);
      first = false;
    };
    for (const SweepResult& r : sweep) {
      metric("mean_overhead_us_n" + std::to_string(r.nodes),
             r.mean_overhead_us, "us", "lower");
    }
    metric("overhead_slope_us_per_node", slope, "us", "lower");
    // The causally-attributed commit-wait is the piece of the overhead
    // the coordinator itself contributes; gate it alongside.
    for (const SweepResult& r : sweep) {
      metric("critical_path_commit_wait_us_n" + std::to_string(r.nodes),
             r.cp_mean_commit_wait_us, "us", "lower");
    }
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
    std::printf("wrote BENCH_fig5b.json\n");
  }
  bool attribution_ok = true;
  for (const SweepResult& r : sweep) {
    attribution_ok = attribution_ok && r.cp_attribution_ok;
  }
  std::printf("attribution check: critical-path phase totals %s the "
              "coordinator wall time\n",
              attribution_ok ? "match" : "DO NOT MATCH");
  return (microsecond_scale && grows_slowly && attribution_ok) ? 0 : 1;
}
