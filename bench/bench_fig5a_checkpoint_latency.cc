// Fig. 5(a): total checkpoint latency for the slm benchmark, 2-8 nodes,
// plus the downtime/total split across capture modes.
//
// Paper result: ~1 second for every node configuration, dominated by the
// time to write the pod state (mostly the non-zero virtual memory) to
// disk, with small error bars and no growth with the node count.
//
// The second table isolates what the application actually feels: with
// the forked (copy-on-write) capture of §5.2 the pod is stopped only for
// the in-memory snapshot, so downtime drops from O(image) to O(pages
// touched) while the total (background) latency stays disk-bound.
//
// Timing comes from two independent sources that must agree: the
// coordinator's <done>-reported statistics (CaptureStats-driven) and the
// agent.save / agent.downtime spans in the trace. Results are emitted as
// BENCH_downtime.json (mode table) and BENCH_fig5a.json (regression-gate
// metrics, see bench/check_regression.py). CRUZ_BENCH_SMOKE=1 shrinks
// the sweep for CI.
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "coord/coordinator.h"
#include "cruz/cluster.h"
#include "slm_sweep.h"

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  const bool smoke = BenchSmoke();
  std::printf("== Fig. 5(a): total checkpoint latency (slm, checkpoints "
              "every 8 s)%s ==\n\n",
              smoke ? " [smoke]" : "");
  std::printf("%6s %18s %12s %16s %16s %10s\n", "nodes", "latency (ms)",
              "stddev", "max local (ms)", "span local (ms)", "samples");
  SweepOptions opt;
  if (smoke) {
    opt.max_nodes = 4;
    opt.app_duration = 16 * kSecond;
  }
  double min_mean = 1e18, max_mean = 0;
  bool spans_agree = true;
  std::vector<SweepResult> sweep;
  for (std::uint32_t n = opt.min_nodes; n <= opt.max_nodes; ++n) {
    SweepResult r = RunSlmSweep(n, opt);
    std::printf("%6u %18.1f %12.2f %16.1f %16.1f %10u\n", r.nodes,
                r.mean_latency_ms, r.stddev_latency_ms, r.mean_local_ms,
                r.span_mean_local_ms, r.samples);
    min_mean = std::min(min_mean, r.mean_latency_ms);
    max_mean = std::max(max_mean, r.mean_latency_ms);
    // Trace spans and coordinator statistics measure the same sim-time
    // windows; disagreement beyond float formatting noise means the
    // instrumentation drifted from the protocol.
    if (std::abs(r.span_mean_local_ms - r.mean_local_ms) >
            0.01 * r.mean_local_ms + 0.01 ||
        std::abs(r.span_mean_downtime_ms - r.mean_downtime_ms) >
            0.01 * r.mean_downtime_ms + 0.01) {
      spans_agree = false;
    }
    sweep.push_back(std::move(r));
  }
  std::printf("\npaper: ~1000 ms, flat across 2-8 nodes "
              "(dominated by writing state to disk)\n");
  bool flat = max_mean - min_mean < 0.2 * max_mean;
  bool second_scale = min_mean > 500 && max_mean < 2000;
  std::printf("shape check: latency is %s and %s; trace spans %s "
              "coordinator stats\n",
              flat ? "flat across node counts" : "NOT FLAT",
              second_scale ? "on the ~1 s scale" : "OFF SCALE",
              spans_agree ? "match" : "DO NOT MATCH");

  // --- critical-path attribution (per-op mean, from the causal graph) -----
  std::printf("\n== critical-path attribution (per-op mean) ==\n\n");
  std::printf("%6s %12s %18s %18s %16s %6s\n", "nodes", "save (ms)",
              "freeze-wait (us)", "commit-wait (us)", "unattributed",
              "ok");
  bool attribution_ok = true;
  for (const SweepResult& r : sweep) {
    std::printf("%6u %12.1f %18.1f %18.1f %15.3f%% %6s\n", r.nodes,
                r.cp_mean_save_ms, r.cp_mean_freeze_wait_us,
                r.cp_mean_commit_wait_us, r.cp_mean_unattributed_pct,
                r.cp_attribution_ok ? "yes" : "NO");
    attribution_ok = attribution_ok && r.cp_attribution_ok;
  }
  std::printf("shape check: phase attribution %s the coordinator wall "
              "time (1%% tolerance, exact tiling)\n",
              attribution_ok ? "matches" : "DOES NOT MATCH");

  // --- downtime vs total across capture modes -----------------------------
  std::printf("\n== downtime vs total per capture mode (slm, 4 nodes)%s "
              "==\n\n",
              smoke ? " [smoke]" : "");
  std::printf("%12s %18s %14s %14s %12s\n", "state", "mode",
              "downtime (ms)", "span dt (ms)", "total (ms)");
  struct Mode {
    const char* name;
    bool cow;
    bool compress;
  };
  const Mode kModes[] = {{"stop-the-world", false, false},
                         {"cow", true, false},
                         {"cow+compressed", true, true}};
  std::vector<std::uint32_t> rows_sweep =
      smoke ? std::vector<std::uint32_t>{256}
            : std::vector<std::uint32_t>{128, 256, 512};
  std::FILE* json = std::fopen("BENCH_downtime.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_row = true;
  double stw_downtime_largest = 0, cow_downtime_largest = 0;
  double cow_total_largest = 0;
  for (std::uint32_t rows : rows_sweep) {
    for (const Mode& mode : kModes) {
      SweepOptions mopt;
      mopt.app_duration = smoke ? 12 * kSecond : 24 * kSecond;
      mopt.grid_rows = rows;
      mopt.grid_cols = 512;
      mopt.copy_on_write = mode.cow;
      mopt.compress = mode.compress;
      // COW rides the Fig. 4 optimized protocol: early resume overlaps
      // network re-enable with the background save.
      mopt.variant = mode.cow ? coord::ProtocolVariant::kOptimized
                              : coord::ProtocolVariant::kBlocking;
      SweepResult r = RunSlmSweep(4, mopt);
      char state[32];
      std::snprintf(state, sizeof state, "%ux512", rows);
      std::printf("%12s %18s %14.2f %14.2f %12.1f\n", state, mode.name,
                  r.mean_downtime_ms, r.span_mean_downtime_ms,
                  r.mean_latency_ms);
      if (std::abs(r.span_mean_downtime_ms - r.mean_downtime_ms) >
          0.01 * r.mean_downtime_ms + 0.01) {
        spans_agree = false;
      }
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"grid\": \"%s\", \"mode\": \"%s\", "
                     "\"downtime_ms\": %.3f, \"total_ms\": %.3f, "
                     "\"samples\": %u}",
                     first_row ? "" : ",\n", state, mode.name,
                     r.mean_downtime_ms, r.mean_latency_ms, r.samples);
        first_row = false;
      }
      if (rows == rows_sweep.back()) {
        if (!mode.cow) stw_downtime_largest = r.mean_downtime_ms;
        if (mode.cow && !mode.compress) {
          cow_downtime_largest = r.mean_downtime_ms;
          cow_total_largest = r.mean_latency_ms;
        }
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_downtime.json\n");
  }
  bool cow_cuts_downtime =
      cow_downtime_largest < 0.25 * stw_downtime_largest;
  std::printf("shape check: at the largest state, cow downtime %.2f ms "
              "is %s stop-the-world downtime %.1f ms\n",
              cow_downtime_largest,
              cow_cuts_downtime ? "< 25% of" : "NOT < 25% of",
              stw_downtime_largest);

  // --- multi-tier storage: per-tier commit latency + restore sources ------
  // Synchronous commit covers the local + partner disk tiers; the netfs
  // flush drains in the background (its lag is the third tier's commit
  // cost). The degraded restart runs with the netfs down and the writer
  // node dead, so one pod must come back from its partner replica.
  std::printf("\n== multi-tier storage (3 nodes, local+partner+netfs) ==\n\n");
  double tiered_commit_ms = 0, tiered_flush_lag_ms = 0;
  double tiered_degraded_restart_ms = 0;
  std::uint64_t restored_local = 0, restored_partner = 0;
  bool tiered_ok = true;
  {
    ClusterConfig config;
    config.num_nodes = 3;
    Cluster c(config);
    os::PodId a = c.CreatePod(0, "a");
    c.pods(0).SpawnInPod(a, "cruz.counter", apps::CounterArgs(1u << 30));
    os::PodId b = c.CreatePod(1, "b");
    c.pods(1).SpawnInPod(b, "cruz.counter", apps::CounterArgs(1u << 30));
    c.sim().RunFor(10 * kMillisecond);

    coord::Coordinator::Options topt;
    topt.tiered = true;
    auto ckpt1 = c.RunGenerationCheckpoint(
        {c.MemberFor(0, a), c.MemberFor(1, b)}, topt);
    tiered_ok = tiered_ok && ckpt1.stats.success;
    tiered_commit_ms =
        static_cast<double>(ckpt1.stats.full_latency) / kMillisecond;
    TimeNs flush_start = c.sim().Now();
    while (c.tiered().PendingFlushCount() > 0 &&
           c.sim().Now() - flush_start < 30 * kSecond) {
      c.sim().RunFor(10 * kMillisecond);
    }
    tiered_ok = tiered_ok && c.tiered().PendingFlushCount() == 0;
    tiered_flush_lag_ms =
        static_cast<double>(c.sim().Now() - flush_start) / kMillisecond;

    // Second generation lands while the netfs is down, then the writer
    // node dies: pod a's only surviving replica is on its ring partner.
    c.fs().set_available(false);
    auto ckpt2 = c.RunGenerationCheckpoint(
        {c.MemberFor(0, a), c.MemberFor(1, b)}, topt);
    tiered_ok = tiered_ok && ckpt2.stats.success;
    c.node(0).Fail();
    c.pods(1).DestroyPod(b);
    c.sim().RunFor(5 * kMillisecond);
    auto restart = c.RunGenerationRestart(
        {c.MemberFor(2, a), c.MemberFor(1, b)}, topt);
    tiered_ok = tiered_ok && restart.stats.success &&
                restart.generation == ckpt2.generation;
    tiered_degraded_restart_ms =
        static_cast<double>(restart.stats.full_latency) / kMillisecond;
    restored_local =
        c.sim().metrics().counter("ckpt.store.restore_source_local").value();
    restored_partner =
        c.sim()
            .metrics()
            .counter("ckpt.store.restore_source_partner")
            .value();
    tiered_ok = tiered_ok && restored_partner >= 1;

    std::printf("%28s %14s\n", "metric", "value");
    std::printf("%28s %14.2f\n", "commit local+partner (ms)",
                tiered_commit_ms);
    std::printf("%28s %14.2f\n", "netfs flush lag (ms)",
                tiered_flush_lag_ms);
    std::printf("%28s %14.2f\n", "degraded restart (ms)",
                tiered_degraded_restart_ms);
    std::printf("%28s %9llu/%llu\n", "restore local/partner",
                static_cast<unsigned long long>(restored_local),
                static_cast<unsigned long long>(restored_partner));
    std::printf("shape check: netfs-down restart %s, partner replica %s\n",
                restart.stats.success ? "succeeded" : "FAILED",
                restored_partner >= 1 ? "used" : "NOT USED");
  }

  // Regression-gate metrics (all sim-time, hence deterministic).
  std::FILE* gate = std::fopen("BENCH_fig5a.json", "w");
  if (gate != nullptr) {
    std::fprintf(gate, "{\"bench\": \"fig5a\", \"metrics\": [\n");
    bool first = true;
    auto metric = [&](const std::string& name, double value,
                      const char* unit, const char* direction) {
      std::fprintf(gate,
                   "%s  {\"name\": \"%s\", \"value\": %.6f, "
                   "\"unit\": \"%s\", \"direction\": \"%s\"}",
                   first ? "" : ",\n", name.c_str(), value, unit,
                   direction);
      first = false;
    };
    for (const SweepResult& r : sweep) {
      metric("mean_latency_ms_n" + std::to_string(r.nodes),
             r.mean_latency_ms, "ms", "lower");
    }
    metric("stw_downtime_ms", stw_downtime_largest, "ms", "lower");
    metric("cow_downtime_ms", cow_downtime_largest, "ms", "lower");
    metric("cow_total_ms", cow_total_largest, "ms", "lower");
    // Critical-path breakdown of the largest sweep, cross-checked above
    // against the coordinator's full_latency per op.
    metric("critical_path_save_ms", sweep.back().cp_mean_save_ms, "ms",
           "lower");
    metric("critical_path_commit_wait_us",
           sweep.back().cp_mean_commit_wait_us, "us", "lower");
    metric("critical_path_unattributed_pct",
           sweep.back().cp_mean_unattributed_pct, "pct", "lower");
    // Multi-tier storage: synchronous commit (local + partner), the
    // background netfs flush lag, the netfs-down + node-loss restart,
    // and how many images each disk tier actually served.
    metric("tiered_commit_ms", tiered_commit_ms, "ms", "lower");
    metric("tiered_flush_lag_ms", tiered_flush_lag_ms, "ms", "lower");
    metric("tiered_degraded_restart_ms", tiered_degraded_restart_ms, "ms",
           "lower");
    metric("tiered_restore_local_total",
           static_cast<double>(restored_local), "count", "higher");
    metric("tiered_restore_partner_total",
           static_cast<double>(restored_partner), "count", "higher");
    std::fprintf(gate, "\n]}\n");
    std::fclose(gate);
    std::printf("wrote BENCH_fig5a.json\n");
  }
  return (flat && second_scale && cow_cuts_downtime && spans_agree &&
          attribution_ok && tiered_ok)
             ? 0
             : 1;
}
