// Fig. 5(a): total checkpoint latency for the slm benchmark, 2-8 nodes,
// plus the downtime/total split across capture modes.
//
// Paper result: ~1 second for every node configuration, dominated by the
// time to write the pod state (mostly the non-zero virtual memory) to
// disk, with small error bars and no growth with the node count.
//
// The second table isolates what the application actually feels: with
// the forked (copy-on-write) capture of §5.2 the pod is stopped only for
// the in-memory snapshot, so downtime drops from O(image) to O(pages
// touched) while the total (background) latency stays disk-bound.
// Results are also emitted as BENCH_downtime.json for tooling.
#include <cstdio>

#include "slm_sweep.h"

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  std::printf("== Fig. 5(a): total checkpoint latency (slm, checkpoints "
              "every 8 s) ==\n\n");
  std::printf("%6s %18s %12s %16s %10s\n", "nodes", "latency (ms)",
              "stddev", "max local (ms)", "samples");
  SweepOptions opt;
  double min_mean = 1e18, max_mean = 0;
  for (std::uint32_t n = opt.min_nodes; n <= opt.max_nodes; ++n) {
    SweepResult r = RunSlmSweep(n, opt);
    std::printf("%6u %18.1f %12.2f %16.1f %10u\n", r.nodes,
                r.mean_latency_ms, r.stddev_latency_ms, r.mean_local_ms,
                r.samples);
    min_mean = std::min(min_mean, r.mean_latency_ms);
    max_mean = std::max(max_mean, r.mean_latency_ms);
  }
  std::printf("\npaper: ~1000 ms, flat across 2-8 nodes "
              "(dominated by writing state to disk)\n");
  bool flat = max_mean - min_mean < 0.2 * max_mean;
  bool second_scale = min_mean > 500 && max_mean < 2000;
  std::printf("shape check: latency is %s and %s\n",
              flat ? "flat across node counts" : "NOT FLAT",
              second_scale ? "on the ~1 s scale" : "OFF SCALE");

  // --- downtime vs total across capture modes -----------------------------
  std::printf("\n== downtime vs total per capture mode (slm, 4 nodes) "
              "==\n\n");
  std::printf("%12s %18s %14s %12s\n", "state", "mode", "downtime (ms)",
              "total (ms)");
  struct Mode {
    const char* name;
    bool cow;
    bool compress;
  };
  const Mode kModes[] = {{"stop-the-world", false, false},
                         {"cow", true, false},
                         {"cow+compressed", true, true}};
  const std::uint32_t kRowsSweep[] = {128, 256, 512};  // memory sizes
  std::FILE* json = std::fopen("BENCH_downtime.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_row = true;
  double stw_downtime_largest = 0, cow_downtime_largest = 0;
  for (std::uint32_t rows : kRowsSweep) {
    for (const Mode& mode : kModes) {
      SweepOptions mopt;
      mopt.app_duration = 24 * kSecond;
      mopt.grid_rows = rows;
      mopt.grid_cols = 512;
      mopt.copy_on_write = mode.cow;
      mopt.compress = mode.compress;
      // COW rides the Fig. 4 optimized protocol: early resume overlaps
      // network re-enable with the background save.
      mopt.variant = mode.cow ? coord::ProtocolVariant::kOptimized
                              : coord::ProtocolVariant::kBlocking;
      SweepResult r = RunSlmSweep(4, mopt);
      char state[32];
      std::snprintf(state, sizeof state, "%ux512", rows);
      std::printf("%12s %18s %14.2f %12.1f\n", state, mode.name,
                  r.mean_downtime_ms, r.mean_latency_ms);
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"grid\": \"%s\", \"mode\": \"%s\", "
                     "\"downtime_ms\": %.3f, \"total_ms\": %.3f, "
                     "\"samples\": %u}",
                     first_row ? "" : ",\n", state, mode.name,
                     r.mean_downtime_ms, r.mean_latency_ms, r.samples);
        first_row = false;
      }
      if (rows == kRowsSweep[2]) {
        if (!mode.cow) stw_downtime_largest = r.mean_downtime_ms;
        if (mode.cow && !mode.compress)
          cow_downtime_largest = r.mean_downtime_ms;
      }
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_downtime.json\n");
  }
  bool cow_cuts_downtime =
      cow_downtime_largest < 0.25 * stw_downtime_largest;
  std::printf("shape check: at the largest state, cow downtime %.2f ms "
              "is %s stop-the-world downtime %.1f ms\n",
              cow_downtime_largest,
              cow_cuts_downtime ? "< 25% of" : "NOT < 25% of",
              stw_downtime_largest);
  return (flat && second_scale && cow_cuts_downtime) ? 0 : 1;
}
