// Fig. 5(a): total checkpoint latency for the slm benchmark, 2-8 nodes.
//
// Paper result: ~1 second for every node configuration, dominated by the
// time to write the pod state (mostly the non-zero virtual memory) to
// disk, with small error bars and no growth with the node count.
#include <cstdio>

#include "slm_sweep.h"

int main() {
  using namespace cruz;
  using namespace cruz::bench;

  std::printf("== Fig. 5(a): total checkpoint latency (slm, checkpoints "
              "every 8 s) ==\n\n");
  std::printf("%6s %18s %12s %16s %10s\n", "nodes", "latency (ms)",
              "stddev", "max local (ms)", "samples");
  SweepOptions opt;
  double min_mean = 1e18, max_mean = 0;
  for (std::uint32_t n = opt.min_nodes; n <= opt.max_nodes; ++n) {
    SweepResult r = RunSlmSweep(n, opt);
    std::printf("%6u %18.1f %12.2f %16.1f %10u\n", r.nodes,
                r.mean_latency_ms, r.stddev_latency_ms, r.mean_local_ms,
                r.samples);
    min_mean = std::min(min_mean, r.mean_latency_ms);
    max_mean = std::max(max_mean, r.mean_latency_ms);
  }
  std::printf("\npaper: ~1000 ms, flat across 2-8 nodes "
              "(dominated by writing state to disk)\n");
  bool flat = max_mean - min_mean < 0.2 * max_mean;
  bool second_scale = min_mean > 500 && max_mean < 2000;
  std::printf("shape check: latency is %s and %s\n",
              flat ? "flat across node counts" : "NOT FLAT",
              second_scale ? "on the ~1 s scale" : "OFF SCALE");
  return (flat && second_scale) ? 0 : 1;
}
