// Ablation of the §5.2 optimizations the paper proposes as future work:
//
//   (a) incremental checkpointing — save only pages dirtied since the
//       previous checkpoint (image size and latency per generation);
//   (b) copy-on-write checkpoint-and-continue — resume the application
//       right after the in-memory capture while the disk write proceeds
//       (application stall time per protocol variant).
#include <cstdio>
#include <vector>

#include "apps/programs.h"
#include "apps/slm.h"
#include "cruz/cluster.h"

namespace {

using namespace cruz;

// --- (a) incremental vs full image sizes -------------------------------------

void RunIncrementalAblation() {
  std::printf("--- (a) incremental checkpointing: slm, 2 nodes, 5 "
              "generations ---\n\n");
  std::printf("%6s %18s %18s %20s %20s\n", "gen", "full img (KiB)",
              "incr img (KiB)", "full latency (ms)", "incr latency (ms)");

  // Two identical runs: one with full checkpoints, one incremental.
  double full_kib[5], incr_kib[5], full_ms[5], incr_ms[5];
  for (int mode = 0; mode < 2; ++mode) {
    apps::RegisterSlmProgram();
    ClusterConfig config;
    config.num_nodes = 2;
    config.node_template.disk_write_bytes_per_sec = 20 * kMiB;
    Cluster c(config);
    apps::SlmConfig base;
    base.nranks = 2;
    base.rows = 512;  // ~2 MiB grid, mostly static
    base.cols = 512;
    base.iterations = 1u << 30;
    base.compute_per_iteration = kMillisecond;
    base.exit_when_done = false;
    std::vector<os::PodId> pods;
    std::vector<coord::Coordinator::Member> members;
    for (std::uint32_t r = 0; r < 2; ++r) {
      pods.push_back(c.CreatePod(r, "slm" + std::to_string(r)));
      base.peers.push_back(c.pods(r).Find(pods.back())->ip);
      members.push_back(c.MemberFor(r, pods.back()));
    }
    for (std::uint32_t r = 0; r < 2; ++r) {
      apps::SlmConfig cfg = base;
      cfg.rank = r;
      c.pods(r).SpawnInPod(pods[r], "cruz.slm_rank", apps::SlmArgs(cfg));
    }
    c.sim().RunFor(kSecond);
    for (int gen = 0; gen < 5; ++gen) {
      c.sim().RunFor(2 * kSecond);
      coord::Coordinator::Options options;
      options.incremental = (mode == 1);
      options.image_prefix = "/ckpt/abl_m" + std::to_string(mode) + "_g" +
                             std::to_string(gen);
      auto stats = c.RunCheckpoint(members, options);
      if (!stats.success) continue;
      cruz::Bytes raw;
      c.fs().ReadFile(stats.image_paths[0], raw);
      double kib = static_cast<double>(raw.size()) / 1024.0;
      double ms = ToMillis(stats.checkpoint_latency);
      if (mode == 0) {
        full_kib[gen] = kib;
        full_ms[gen] = ms;
      } else {
        incr_kib[gen] = kib;
        incr_ms[gen] = ms;
      }
    }
  }
  for (int gen = 0; gen < 5; ++gen) {
    std::printf("%6d %18.1f %18.1f %20.2f %20.2f\n", gen, full_kib[gen],
                incr_kib[gen], full_ms[gen], incr_ms[gen]);
  }
  std::printf("\n(generation 0 is always full; slm dirties only its "
              "boundary rows, so the deltas are ~%.0fx smaller and the "
              "checkpoints correspondingly faster)\n\n",
              full_kib[2] / incr_kib[2]);
}

// --- (b) application stall per variant -------------------------------------------

double MeasureStallMs(coord::ProtocolVariant variant, bool cow) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.node_template.disk_write_bytes_per_sec = 4 * kMiB;  // slow disk
  Cluster c(config);
  std::vector<os::PodId> pods;
  std::vector<os::Pid> vpids;
  std::vector<coord::Coordinator::Member> members;
  for (std::uint32_t i = 0; i < 2; ++i) {
    pods.push_back(c.CreatePod(i, "cnt" + std::to_string(i)));
    vpids.push_back(c.pods(i).SpawnInPod(pods.back(), "cruz.counter",
                                         apps::CounterArgs(1u << 30)));
    // Working set so the disk write takes ~250 ms.
    os::Process* proc = c.node(i).os().FindProcess(
        c.pods(i).ToRealPid(pods.back(), vpids.back()));
    cruz::Bytes page(os::kPageSize, 0x42);
    for (std::uint64_t k = 0; k < 256; ++k) {
      proc->memory().InstallPage(0x100 + k, page);
    }
    members.push_back(c.MemberFor(i, pods.back()));
  }
  c.sim().RunFor(50 * kMillisecond);

  // Sample pod 0's counter every 250 us; stall = longest flat interval.
  std::vector<std::pair<TimeNs, std::uint64_t>> samples;
  bool sampling = true;
  std::function<void()> sample = [&] {
    if (!sampling) return;
    os::Process* proc =
        c.node(0).os().FindProcess(c.pods(0).ToRealPid(pods[0], vpids[0]));
    if (proc != nullptr) {
      samples.emplace_back(c.sim().Now(), apps::ReadCounter(*proc));
    }
    c.sim().Schedule(250 * kMicrosecond, sample);
  };
  c.sim().Schedule(0, sample);

  coord::Coordinator::Options options;
  options.variant = variant;
  options.copy_on_write = cow;
  options.image_prefix = "/ckpt/stall";
  auto stats = c.RunCheckpoint(members, options);
  c.sim().RunFor(kSecond);
  sampling = false;
  c.sim().RunFor(kMillisecond);
  if (!stats.success) return -1;

  TimeNs longest = 0, start = 0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].second == samples[i - 1].second) {
      if (start == 0) start = samples[i - 1].first;
      longest = std::max<TimeNs>(longest, samples[i].first - start);
    } else {
      start = 0;
    }
  }
  return ToMillis(longest);
}

}  // namespace

int main() {
  std::printf("== Ablation: §5.2 checkpoint optimizations ==\n\n");
  RunIncrementalAblation();

  std::printf("--- (b) application stall during a checkpoint (2 nodes, "
              "~250 ms disk write) ---\n\n");
  double blocking = MeasureStallMs(coord::ProtocolVariant::kBlocking,
                                   false);
  double optimized = MeasureStallMs(coord::ProtocolVariant::kOptimized,
                                    false);
  double cow = MeasureStallMs(coord::ProtocolVariant::kOptimized, true);
  std::printf("%34s %14s\n", "variant", "stall (ms)");
  std::printf("%34s %14.1f\n", "Fig. 2 blocking", blocking);
  std::printf("%34s %14.1f\n", "Fig. 4 optimized", optimized);
  std::printf("%34s %14.1f\n", "Fig. 4 + copy-on-write", cow);

  bool ok = blocking > 100 && cow >= 0 && cow < blocking / 10 &&
            optimized <= blocking + 1;
  std::printf("\nshape check: %s\n",
              ok ? "copy-on-write removes the disk write from the "
                   "application's critical path"
                 : "UNEXPECTED");
  return ok ? 0 : 1;
}
