// Micro-benchmarks (google-benchmark) for the substrates the experiments
// sit on: checkpoint image codec, TCP connection machinery, sparse
// memory, CRC32, and single-node capture/restore.
#include <benchmark/benchmark.h>

#include "apps/programs.h"
#include "ckpt/engine.h"
#include "common/crc32.h"
#include "cruz/cluster.h"
#include "tcp/connection.h"

namespace {

using namespace cruz;

void BM_Crc32(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

void BM_MemorySparseWrite(benchmark::State& state) {
  Bytes chunk(4096, 0x5A);
  for (auto _ : state) {
    os::Memory mem;
    for (int i = 0; i < state.range(0); ++i) {
      mem.WriteBytes(static_cast<std::uint64_t>(i) * os::kPageSize, chunk);
    }
    benchmark::DoNotOptimize(mem.PageCount());
  }
}
BENCHMARK(BM_MemorySparseWrite)->Arg(64)->Arg(512);

void BM_TcpSegmentCodec(benchmark::State& state) {
  tcp::TcpSegment seg;
  seg.src_port = 1;
  seg.dst_port = 2;
  seg.seq = 12345;
  seg.ack = 67890;
  seg.ack_flag = true;
  seg.payload = Bytes(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    Bytes wire = seg.Encode();
    benchmark::DoNotOptimize(tcp::TcpSegment::Decode(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TcpSegmentCodec)->Arg(64)->Arg(1460);

// Simulated TCP throughput: how much simulated data the whole
// stack (program -> syscalls -> TCP -> switch) moves per wall-second.
void BM_SimulatedStreamTransfer(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig config;
    config.num_nodes = 2;
    Cluster cluster(config);
    os::PodId rp = cluster.CreatePod(1, "r");
    net::Ipv4Address rip = cluster.pods(1).Find(rp)->ip;
    cluster.pods(1).SpawnInPod(rp, "cruz.stream_receiver",
                               apps::StreamReceiverArgs(9100));
    cluster.sim().RunFor(5 * kMillisecond);
    os::PodId sp = cluster.CreatePod(0, "s");
    cluster.pods(0).SpawnInPod(
        sp, "cruz.stream_sender",
        apps::StreamSenderArgs(
            rip, 9100, static_cast<std::uint64_t>(state.range(0))));
    cluster.sim().RunFor(30 * kSecond);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SimulatedStreamTransfer)->Arg(1 << 20)->Unit(
    benchmark::kMillisecond);

// Image serialize + deserialize for a pod with a grid-sized process.
void BM_CheckpointImageCodec(benchmark::State& state) {
  ClusterConfig config;
  config.num_nodes = 1;
  Cluster cluster(config);
  os::PodId pod = cluster.CreatePod(0, "job");
  cluster.pods(0).SpawnInPod(pod, "cruz.counter",
                             apps::CounterArgs(1u << 30));
  cluster.sim().RunFor(kMillisecond);
  // Give the process a multi-megabyte address space.
  os::Pid real = cluster.pods(0).ToRealPid(pod, 1);
  os::Process* proc = cluster.node(0).os().FindProcess(real);
  Bytes page(os::kPageSize, 0x3C);
  for (int i = 0; i < state.range(0); ++i) {
    proc->memory().InstallPage(0x1000 + static_cast<std::uint64_t>(i),
                               page);
  }
  ckpt::PodCheckpoint ck =
      ckpt::CheckpointEngine::CapturePod(cluster.pods(0), pod);
  for (auto _ : state) {
    Bytes image = ck.Serialize();
    benchmark::DoNotOptimize(ckpt::PodCheckpoint::Deserialize(image));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * os::kPageSize);
}
BENCHMARK(BM_CheckpointImageCodec)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMillisecond);

// Full single-node capture+restore cycle.
void BM_CaptureRestoreCycle(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig config;
    config.num_nodes = 1;
    Cluster cluster(config);
    os::PodId pod = cluster.CreatePod(0, "job");
    cluster.pods(0).SpawnInPod(pod, "cruz.counter",
                               apps::CounterArgs(1u << 30));
    cluster.sim().RunFor(10 * kMillisecond);
    ckpt::PodCheckpoint ck =
        ckpt::CheckpointEngine::CapturePod(cluster.pods(0), pod);
    cluster.pods(0).DestroyPod(pod);
    os::PodId restored =
        ckpt::CheckpointEngine::RestorePod(cluster.pods(0), ck);
    ckpt::CheckpointEngine::ResumePod(cluster.pods(0), restored);
    cluster.sim().RunFor(kMillisecond);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_CaptureRestoreCycle)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
