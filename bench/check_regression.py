#!/usr/bin/env python3
"""Bench regression gate.

Compares BENCH_*.json metric files produced by a bench run against the
committed baselines in bench/baselines/. Every metric is sim-time derived
and therefore deterministic, so the comparison is exact in practice; the
threshold exists to let intentional model recalibrations land without
immediately re-baselining.

Metric file schema (emitted by the bench binaries):

    {"bench": "fig5a",
     "metrics": [{"name": "...", "value": 1.0,
                  "unit": "ms", "direction": "lower"}, ...]}

`direction` is which way is better: "lower" fails when the current value
exceeds baseline * (1 + threshold); "higher" fails when it falls below
baseline * (1 - threshold). A metric may carry its own "threshold" field
in the baseline entry (e.g. wall-clock rates, which vary with machine
speed); it overrides the global --threshold for that metric.

When $GITHUB_STEP_SUMMARY is set, a per-metric markdown delta table is
appended to it so the verdict is readable from the Actions run page
without digging through logs.

Usage:
    python3 bench/check_regression.py --current-dir build/bench \
        [--baseline-dir bench/baselines] [--threshold 0.20]

    python3 bench/check_regression.py --self-test

Exit status: 0 = no regression, 1 = regression or missing data; the
failure line names every offending metric.
"""

import argparse
import json
import os
import sys
import tempfile


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("metrics", [])}


def compare_metric(baseline, current, default_threshold):
    """Returns (bad, delta) for one metric.

    `delta` is signed in the worse direction: positive means worse than
    baseline, regardless of whether lower or higher is better.
    """
    bv, cv = baseline["value"], current["value"]
    direction = baseline.get("direction", "lower")
    threshold = baseline.get("threshold", default_threshold)
    if direction == "lower":
        bad = cv > bv * (1 + threshold)
        delta = (cv - bv) / bv if bv else 0.0
    else:
        bad = cv < bv * (1 - threshold)
        delta = (bv - cv) / bv if bv else 0.0
    return bad, delta, threshold


def run_gate(baseline_dir, current_dir, threshold, only=None):
    """Compares every baseline file; returns (exit_code, summary_rows).

    `only` (a set of bench names, e.g. {"coordinator_scale"}) restricts
    the gate to those baselines, for CI jobs that run a subset of the
    benches.
    """
    baselines = sorted(
        f for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if only is not None:
        baselines = [f for f in baselines
                     if f[len("BENCH_"):-len(".json")] in only]
    if not baselines:
        print(f"no baselines found in {baseline_dir}", file=sys.stderr)
        return 1, []

    offenders = []
    rows = []  # (bench, metric, current, baseline, delta, threshold, status)
    for fname in baselines:
        base_path = os.path.join(baseline_dir, fname)
        cur_path = os.path.join(current_dir, fname)
        bench = fname[len("BENCH_"):-len(".json")]
        if not os.path.exists(cur_path):
            print(f"MISSING  {fname}: bench did not produce it")
            offenders.append(f"{bench} (file missing)")
            rows.append((bench, "(all)", None, None, None, None, "MISSING"))
            continue
        base = load_metrics(base_path)
        cur = load_metrics(cur_path)
        print(f"== {fname} (threshold {threshold:.0%}) ==")
        for name, bm in base.items():
            if name not in cur:
                print(f"  MISSING  {name}")
                offenders.append(name)
                rows.append((bench, name, None, bm["value"], None, None,
                             "MISSING"))
                continue
            bad, delta, thr = compare_metric(bm, cur[name], threshold)
            status = "REGRESS" if bad else "ok"
            unit = bm.get("unit", "")
            print(f"  {status:8} {name}: {cur[name]['value']:.3f} {unit} "
                  f"(baseline {bm['value']:.3f}, {delta:+.1%} "
                  f"worse-direction, threshold {thr:.0%})")
            rows.append((bench, name, cur[name]["value"], bm["value"],
                         delta, thr, status))
            if bad:
                offenders.append(name)
        extra = set(cur) - set(base)
        for name in sorted(extra):
            print(f"  NEW      {name}: {cur[name]['value']:.3f} "
                  f"(no baseline; add it to {base_path})")
            rows.append((bench, name, cur[name]["value"], None, None, None,
                         "NEW"))

    if offenders:
        print("\nregression gate: FAILED ({})".format(", ".join(offenders)))
        return 1, rows
    print("\nregression gate: passed")
    return 0, rows


def write_step_summary(rows, exit_code, path):
    verdict = "❌ FAILED" if exit_code else "✅ passed"
    with open(path, "a") as f:
        f.write(f"### Bench regression gate: {verdict}\n\n")
        f.write("| bench | metric | current | baseline | delta (worse-dir)"
                " | threshold | status |\n")
        f.write("|---|---|---:|---:|---:|---:|---|\n")
        for bench, name, cv, bv, delta, thr, status in rows:
            cv_s = f"{cv:.3f}" if cv is not None else "—"
            bv_s = f"{bv:.3f}" if bv is not None else "—"
            delta_s = f"{delta:+.1%}" if delta is not None else "—"
            thr_s = f"{thr:.0%}" if thr is not None else "—"
            mark = {"REGRESS": "**REGRESS**", "MISSING": "**MISSING**"}.get(
                status, status)
            f.write(f"| {bench} | `{name}` | {cv_s} | {bv_s} | {delta_s} "
                    f"| {thr_s} | {mark} |\n")
        f.write("\n")


def self_test():
    """Exercises the threshold logic end to end (invoked from ctest)."""
    def gate(base_metrics, cur_metrics, threshold=0.20, drop_current=False):
        with tempfile.TemporaryDirectory() as tmp:
            bdir = os.path.join(tmp, "base")
            cdir = os.path.join(tmp, "cur")
            os.mkdir(bdir)
            os.mkdir(cdir)
            with open(os.path.join(bdir, "BENCH_selftest.json"), "w") as f:
                json.dump({"bench": "selftest", "metrics": base_metrics}, f)
            if not drop_current:
                with open(os.path.join(cdir, "BENCH_selftest.json"),
                          "w") as f:
                    json.dump({"bench": "selftest",
                               "metrics": cur_metrics}, f)
            code, rows = run_gate(bdir, cdir, threshold)
            return code, rows

    lo = {"name": "lat", "value": 10.0, "unit": "ms", "direction": "lower"}
    hi = {"name": "rate", "value": 100.0, "unit": "B/s",
          "direction": "higher"}

    checks = [
        # Within threshold: 20% worse on a lower-is-better metric passes
        # at the boundary, fails just beyond it.
        ("lower within", gate([lo], [dict(lo, value=12.0)])[0], 0),
        ("lower beyond", gate([lo], [dict(lo, value=12.1)])[0], 1),
        # Improvements never fail, in either direction.
        ("lower improved", gate([lo], [dict(lo, value=1.0)])[0], 0),
        ("higher improved", gate([hi], [dict(hi, value=500.0)])[0], 0),
        # higher-is-better fails when the value falls too far.
        ("higher within", gate([hi], [dict(hi, value=80.0)])[0], 0),
        ("higher beyond", gate([hi], [dict(hi, value=79.0)])[0], 1),
        # Per-metric threshold override beats the global one.
        ("override loose",
         gate([dict(lo, threshold=0.50)], [dict(lo, value=14.0)])[0], 0),
        ("override tight",
         gate([dict(lo, threshold=0.01)], [dict(lo, value=10.2)])[0], 1),
        # A metric present in the baseline but absent from the run fails;
        # a NEW metric with no baseline is informational only.
        ("metric missing", gate([lo, hi], [lo])[0], 1),
        ("new metric ok", gate([lo], [lo, dict(hi, name="extra")])[0], 0),
        # A baseline file the bench never produced fails.
        ("file missing", gate([lo], [], drop_current=True)[0], 1),
    ]
    failures = [name for name, got, want in checks if got != want]

    # The failure line must name the offending metric.
    code, rows = gate([lo], [dict(lo, value=99.0)])
    if code != 1 or not any(r[1] == "lat" and r[6] == "REGRESS"
                            for r in rows):
        failures.append("offender named")

    # The step-summary table renders every row.
    with tempfile.TemporaryDirectory() as tmp:
        summary = os.path.join(tmp, "summary.md")
        write_step_summary(rows, code, summary)
        with open(summary) as f:
            text = f.read()
        if "`lat`" not in text or "FAILED" not in text:
            failures.append("step summary rendered")

    if failures:
        print("self-test FAILED:", ", ".join(failures))
        return 1
    print("self-test passed ({} checks)".format(len(checks) + 2))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    ap.add_argument("--only", default=None,
                    help="comma-separated bench names to gate "
                         "(default: every committed baseline)")
    ap.add_argument("--self-test", action="store_true",
                    help="exercise the threshold logic and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    only = set(args.only.split(",")) if args.only else None
    code, rows = run_gate(args.baseline_dir, args.current_dir,
                          args.threshold, only=only)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        write_step_summary(rows, code, summary_path)
    return code


if __name__ == "__main__":
    sys.exit(main())
