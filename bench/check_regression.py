#!/usr/bin/env python3
"""Bench regression gate.

Compares BENCH_*.json metric files produced by a bench run against the
committed baselines in bench/baselines/. Every metric is sim-time derived
and therefore deterministic, so the comparison is exact in practice; the
threshold exists to let intentional model recalibrations land without
immediately re-baselining.

Metric file schema (emitted by the bench binaries):

    {"bench": "fig5a",
     "metrics": [{"name": "...", "value": 1.0,
                  "unit": "ms", "direction": "lower"}, ...]}

`direction` is which way is better: "lower" fails when the current value
exceeds baseline * (1 + threshold); "higher" fails when it falls below
baseline * (1 - threshold). A metric may carry its own "threshold" field
in the baseline entry (e.g. wall-clock rates, which vary with machine
speed); it overrides the global --threshold for that metric.

Usage:
    python3 bench/check_regression.py --current-dir build/bench \
        [--baseline-dir bench/baselines] [--threshold 0.20]

Exit status: 0 = no regression, 1 = regression or missing data.
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("metrics", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional regression (default 0.20)")
    args = ap.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no baselines found in {args.baseline_dir}", file=sys.stderr)
        return 1

    failed = False
    for fname in baselines:
        base_path = os.path.join(args.baseline_dir, fname)
        cur_path = os.path.join(args.current_dir, fname)
        if not os.path.exists(cur_path):
            print(f"MISSING  {fname}: bench did not produce it")
            failed = True
            continue
        base = load_metrics(base_path)
        cur = load_metrics(cur_path)
        print(f"== {fname} (threshold {args.threshold:.0%}) ==")
        for name, bm in base.items():
            if name not in cur:
                print(f"  MISSING  {name}")
                failed = True
                continue
            bv, cv = bm["value"], cur[name]["value"]
            direction = bm.get("direction", "lower")
            threshold = bm.get("threshold", args.threshold)
            if direction == "lower":
                bad = cv > bv * (1 + threshold)
                delta = (cv - bv) / bv if bv else 0.0
            else:
                bad = cv < bv * (1 - threshold)
                delta = (bv - cv) / bv if bv else 0.0
            status = "REGRESS" if bad else "ok"
            unit = bm.get("unit", "")
            print(f"  {status:8} {name}: {cv:.3f} {unit} "
                  f"(baseline {bv:.3f}, {delta:+.1%} worse-direction, "
                  f"threshold {threshold:.0%})")
            failed = failed or bad
        extra = set(cur) - set(base)
        for name in sorted(extra):
            print(f"  NEW      {name}: {cur[name]['value']:.3f} "
                  f"(no baseline; add it to {base_path})")

    print("\nregression gate:", "FAILED" if failed else "passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
